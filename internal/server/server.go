// Package server implements the SQL++ query service: a concurrent HTTP
// JSON API over an embedded Engine. It is the network face of the
// engine's Options/Prepared surface — requests compile through an LRU
// prepared-plan cache, execute under a bounded-concurrency admission
// gate with per-request deadlines, and the deadlines reach the plan's
// row-production loops through the engine's cooperative cancellation,
// so a runaway cross join stops instead of pinning a worker.
//
// Endpoints:
//
//	POST /v1/query               run a query
//	                             body: {"query", "params", "options", "timeout_ms", "format"}
//	POST /v1/collections/{name}  ingest a collection (?format=sion|json|jsonl|csv|cbor)
//	GET  /v1/collections         list registered collections
//	GET  /healthz                liveness probe
//	GET  /metrics                plain-text counters and latency percentiles
package server

import (
	"context"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"sqlpp"
)

// Config tunes the service. The zero value selects the defaults noted
// on each field.
type Config struct {
	// MaxConcurrent bounds queries executing at once; excess requests
	// wait at the gate until a slot frees or their deadline fires.
	// Default: 4 × GOMAXPROCS.
	MaxConcurrent int
	// DefaultTimeout applies when a request names no timeout_ms.
	// Default: 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeouts. Default: 5m.
	MaxTimeout time.Duration
	// PlanCacheSize is the number of compiled plans kept; <= -1
	// disables the cache. Default (0): 256.
	PlanCacheSize int
	// MaxBodyBytes caps request bodies (ingest payloads dominate).
	// Default: 32 MiB.
	MaxBodyBytes int64
}

func (c *Config) fillDefaults() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4 * runtime.GOMAXPROCS(0)
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.PlanCacheSize == 0 {
		c.PlanCacheSize = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
}

// Server is the HTTP query service. Create one with New; it implements
// http.Handler.
type Server struct {
	engine   *sqlpp.Engine
	cfg      Config
	cache    *PlanCache
	metrics  Metrics
	gate     chan struct{}
	inflight atomic.Int64
	started  time.Time
	mux      *http.ServeMux
}

// New builds a Server over engine. The engine's catalog is shared:
// values registered on it before or after New are visible to queries,
// and ingests through the API are visible to direct engine use.
func New(engine *sqlpp.Engine, cfg Config) *Server {
	cfg.fillDefaults()
	s := &Server{
		engine:  engine,
		cfg:     cfg,
		cache:   NewPlanCache(cfg.PlanCacheSize),
		gate:    make(chan struct{}, cfg.MaxConcurrent),
		started: time.Now(),
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/collections/{name}", s.handleIngest)
	s.mux.HandleFunc("GET /v1/collections", s.handleCollections)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Cache exposes the plan cache (tests and metrics).
func (s *Server) Cache() *PlanCache { return s.cache }

// Metrics exposes the service counters.
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Engine returns the underlying engine.
func (s *Server) Engine() *sqlpp.Engine { return s.engine }

// acquire claims an execution slot, waiting until one frees or ctx
// (which carries the request's deadline, so queue wait counts against
// the query budget) fires. It reports false — and counts a rejection —
// when the caller should give up.
func (s *Server) acquire(ctx context.Context) bool {
	select {
	case s.gate <- struct{}{}:
		s.inflight.Add(1)
		return true
	case <-ctx.Done():
		s.metrics.Rejected.Add(1)
		return false
	}
}

func (s *Server) release() {
	s.inflight.Add(-1)
	<-s.gate
}
