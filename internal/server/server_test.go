package server_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sqlpp"
	"sqlpp/internal/compat"
	"sqlpp/internal/server"
	"sqlpp/internal/sion"
	"sqlpp/internal/value"
)

// newTestServer starts the service on an ephemeral port.
func newTestServer(t *testing.T, opts *sqlpp.Options, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	svc := server.New(sqlpp.New(opts), cfg)
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)
	return svc, ts
}

type queryReply struct {
	Result    json.RawMessage `json:"result"`
	Cached    bool            `json:"cached"`
	ElapsedUS int64           `json:"elapsed_us"`
	Plan      []string        `json:"plan"`
	Error     string          `json:"error"`
}

// postQuery sends a query request and decodes the reply.
func postQuery(t *testing.T, base string, body string) (int, queryReply) {
	t.Helper()
	resp, err := http.Post(base+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out queryReply
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode reply: %v", err)
	}
	return resp.StatusCode, out
}

// ingest posts a collection body.
func ingest(t *testing.T, base, name, format, body string) {
	t.Helper()
	url := fmt.Sprintf("%s/v1/collections/%s?format=%s", base, name, format)
	resp, err := http.Post(url, "application/octet-stream", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("ingest %s: status %d: %s", name, resp.StatusCode, b)
	}
}

// sionResult parses a format:"sion" query reply back into a value.
func sionResult(t *testing.T, raw json.RawMessage) value.Value {
	t.Helper()
	var text string
	if err := json.Unmarshal(raw, &text); err != nil {
		t.Fatalf("sion result not a JSON string: %v", err)
	}
	v, err := sion.Parse(text)
	if err != nil {
		t.Fatalf("parse result %q: %v", text, err)
	}
	return v
}

// TestQueryEndToEnd is the acceptance walk: start the server on an
// ephemeral port, ingest a paper listing, run its query twice over
// HTTP, and check that the second run hits the plan cache while both
// return the paper's result.
func TestQueryEndToEnd(t *testing.T) {
	svc, ts := newTestServer(t, nil, server.Config{})

	// Listing 1 data, over the wire in the paper's notation.
	ingest(t, ts.URL, "hr.emp_nest_tuples", "sion", compat.EmpNestTuples)

	req := `{"query": "SELECT e.name AS emp_name, p.name AS proj_name FROM hr.emp_nest_tuples AS e, e.projects AS p WHERE p.name LIKE '%Security%'", "format": "sion"}`
	want := sion.MustParse(`{{
	  {'emp_name': 'Bob Smith', 'proj_name': 'OLAP Security'},
	  {'emp_name': 'Bob Smith', 'proj_name': 'OLTP Security'},
	  {'emp_name': 'Jane Smith', 'proj_name': 'OLTP Security'}
	}}`)

	status, first := postQuery(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("first query: status %d (%s)", status, first.Error)
	}
	if first.Cached {
		t.Error("first execution claims a cache hit")
	}
	if got := sionResult(t, first.Result); !value.Equivalent(want, got) {
		t.Errorf("first result mismatch:\n got %s\nwant %s", got, want)
	}

	hitsBefore := svc.Cache().Hits()
	status, second := postQuery(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("second query: status %d (%s)", status, second.Error)
	}
	if !second.Cached {
		t.Error("second execution did not hit the plan cache")
	}
	if got := sionResult(t, second.Result); !value.Equivalent(want, got) {
		t.Errorf("second result mismatch:\n got %s\nwant %s", got, want)
	}
	if hits := svc.Cache().Hits(); hits != hitsBefore+1 {
		t.Errorf("cache hits = %d, want %d", hits, hitsBefore+1)
	}

	// The counters surface on /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metrics, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"sqlpp_requests_total 2",
		"sqlpp_plan_cache_hits_total 1",
		"sqlpp_plan_cache_misses_total 1",
		"sqlpp_plan_cache_entries 1",
		"sqlpp_ingests_total 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestQueryTimeout proves cancellation reaches the plan loops: a large
// cross join with a 50ms deadline must fail well inside a second
// instead of grinding through ~9M rows.
func TestQueryTimeout(t *testing.T) {
	svc, ts := newTestServer(t, nil, server.Config{})

	big := make(value.Bag, 3000)
	for i := range big {
		big[i] = value.Int(int64(i))
	}
	if err := svc.Engine().Register("big1", big); err != nil {
		t.Fatal(err)
	}
	if err := svc.Engine().Register("big2", big); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	status, reply := postQuery(t, ts.URL,
		`{"query": "SELECT VALUE a + b FROM big1 AS a, big2 AS b WHERE a + b < 0", "timeout_ms": 50}`)
	elapsed := time.Since(start)

	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want %d", status, reply.Error, http.StatusGatewayTimeout)
	}
	if !strings.Contains(reply.Error, "deadline") {
		t.Errorf("error %q does not mention the deadline", reply.Error)
	}
	if elapsed >= time.Second {
		t.Errorf("timed-out query took %s, want < 1s", elapsed)
	}
	if svc.Metrics().Timeouts.Load() != 1 {
		t.Errorf("timeouts counter = %d, want 1", svc.Metrics().Timeouts.Load())
	}
}

// TestIngestFormats loads the same rows as CSV, JSON, and JSON Lines
// and checks a query sees identical results regardless of wire format.
func TestIngestFormats(t *testing.T) {
	_, ts := newTestServer(t, nil, server.Config{})

	ingest(t, ts.URL, "emp_csv", "csv", "name,salary\nAda,120\nBob,90\n")
	ingest(t, ts.URL, "emp_json", "json", `[{"name":"Ada","salary":120},{"name":"Bob","salary":90}]`)
	ingest(t, ts.URL, "emp_jsonl", "jsonl", `{"name":"Ada","salary":120}
{"name":"Bob","salary":90}`)

	want := sion.MustParse(`{{ 'Ada' }}`)
	for _, coll := range []string{"emp_csv", "emp_json", "emp_jsonl"} {
		req := fmt.Sprintf(`{"query": "SELECT VALUE e.name FROM %s AS e WHERE e.salary > 100", "format": "sion"}`, coll)
		status, reply := postQuery(t, ts.URL, req)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d (%s)", coll, status, reply.Error)
		}
		if got := sionResult(t, reply.Result); !value.Equivalent(want, got) {
			t.Errorf("%s: got %s, want %s", coll, got, want)
		}
	}

	// The collection listing names all three.
	resp, err := http.Get(ts.URL + "/v1/collections")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing struct {
		Collections []string `json:"collections"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Collections) != 3 {
		t.Errorf("collections = %v, want 3 names", listing.Collections)
	}
}

// TestIngestPurgesPlanCache: re-registering a collection must not serve
// results from a plan resolved against the old name set.
func TestIngestPurgesPlanCache(t *testing.T) {
	svc, ts := newTestServer(t, nil, server.Config{})
	ingest(t, ts.URL, "nums", "sion", `{{ 1, 2, 3 }}`)

	req := `{"query": "SELECT VALUE n FROM nums AS n", "format": "sion"}`
	if status, reply := postQuery(t, ts.URL, req); status != http.StatusOK {
		t.Fatalf("status %d (%s)", status, reply.Error)
	}
	if svc.Cache().Len() != 1 {
		t.Fatalf("cache entries = %d, want 1", svc.Cache().Len())
	}

	ingest(t, ts.URL, "nums", "sion", `{{ 7 }}`)
	if svc.Cache().Len() != 0 {
		t.Errorf("cache not purged after ingest: %d entries", svc.Cache().Len())
	}
	status, reply := postQuery(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status %d (%s)", status, reply.Error)
	}
	if got, want := sionResult(t, reply.Result), sion.MustParse(`{{ 7 }}`); !value.Equivalent(want, got) {
		t.Errorf("got %s, want %s", got, want)
	}
}

// TestQueryParams exercises parameterized requests end to end,
// including nested JSON parameter values.
func TestQueryParams(t *testing.T) {
	_, ts := newTestServer(t, nil, server.Config{})
	ingest(t, ts.URL, "emp", "sion", compat.EmpFlat)

	req := `{"query": "SELECT VALUE e.name FROM emp AS e WHERE e.salary >= $min AND e.title = $title", "params": {"$min": 110000, "$title": "Engineer"}, "format": "sion"}`
	status, reply := postQuery(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status %d (%s)", status, reply.Error)
	}
	if got, want := sionResult(t, reply.Result), sion.MustParse(`{{ 'Clara' }}`); !value.Equivalent(want, got) {
		t.Errorf("got %s, want %s", got, want)
	}

	// Same query text with different params must hit the cached plan.
	req2 := `{"query": "SELECT VALUE e.name FROM emp AS e WHERE e.salary >= $min AND e.title = $title", "params": {"$min": 150000, "$title": "Manager"}, "format": "sion"}`
	status, reply = postQuery(t, ts.URL, req2)
	if status != http.StatusOK {
		t.Fatalf("status %d (%s)", status, reply.Error)
	}
	if !reply.Cached {
		t.Error("parameterized re-execution missed the plan cache")
	}
	if got, want := sionResult(t, reply.Result), sion.MustParse(`{{ 'Dan', 'Eve' }}`); !value.Equivalent(want, got) {
		t.Errorf("got %s, want %s", got, want)
	}
}

// TestPerRequestOptions checks that options fork the engine per request
// and partition the plan cache (compat rewrites differ).
func TestPerRequestOptions(t *testing.T) {
	svc, ts := newTestServer(t, nil, server.Config{})
	ingest(t, ts.URL, "emp", "sion", `{{ {'name':'Ada','salary':1} }}`)

	base := `"query": "SELECT e.name FROM emp AS e", "format": "sion"`
	if status, r := postQuery(t, ts.URL, `{`+base+`}`); status != http.StatusOK {
		t.Fatalf("plain: %d (%s)", status, r.Error)
	}
	status, r := postQuery(t, ts.URL, `{`+base+`, "options": {"compat": true}}`)
	if status != http.StatusOK {
		t.Fatalf("compat: %d (%s)", status, r.Error)
	}
	if r.Cached {
		t.Error("compat request hit the non-compat plan")
	}
	if svc.Cache().Len() != 2 {
		t.Errorf("cache entries = %d, want 2 (one per options fingerprint)", svc.Cache().Len())
	}
}

// TestConcurrentQueries hammers one cached plan through the gate from
// many goroutines; run under -race this is the service-level shared-
// Prepared soundness check.
func TestConcurrentQueries(t *testing.T) {
	_, ts := newTestServer(t, nil, server.Config{MaxConcurrent: 4})
	ingest(t, ts.URL, "emp", "sion", compat.EmpFlat)

	req := `{"query": "SELECT VALUE e.name FROM emp AS e WHERE e.salary > 100000", "format": "sion"}`
	want := sion.MustParse(`{{ 'Clara', 'Dan', 'Eve' }}`)

	const workers = 16
	const perWorker = 10
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(req))
				if err != nil {
					errs <- err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d: %s", resp.StatusCode, body)
					return
				}
				var reply queryReply
				if err := json.Unmarshal(body, &reply); err != nil {
					errs <- err
					return
				}
				var text string
				if err := json.Unmarshal(reply.Result, &text); err != nil {
					errs <- err
					return
				}
				got, err := sion.Parse(text)
				if err != nil {
					errs <- err
					return
				}
				if !value.Equivalent(want, got) {
					errs <- fmt.Errorf("got %s, want %s", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestBadRequests covers the error statuses.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, &sqlpp.Options{StopOnError: true}, server.Config{})

	cases := []struct {
		name, body string
		status     int
	}{
		{"empty body", `{}`, http.StatusBadRequest},
		{"not json", `SELECT 1`, http.StatusBadRequest},
		{"parse error", `{"query": "SELECT FROM WHERE"}`, http.StatusBadRequest},
		{"unknown name", `{"query": "SELECT VALUE x FROM nope AS x"}`, http.StatusBadRequest},
		{"bad format", `{"query": "SELECT VALUE 1", "format": "xml"}`, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		status, reply := postQuery(t, ts.URL, c.body)
		if status != c.status {
			t.Errorf("%s: status %d (%s), want %d", c.name, status, reply.Error, c.status)
		}
		if reply.Error == "" {
			t.Errorf("%s: no error message", c.name)
		}
	}

	// Unknown ingest format.
	resp, err := http.Post(ts.URL+"/v1/collections/x?format=xml", "", strings.NewReader("<x/>"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad ingest format: status %d, want 400", resp.StatusCode)
	}
}

// TestHealthz checks the liveness probe shape.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, nil, server.Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body struct {
		Status      string `json:"status"`
		Collections int    `json:"collections"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" {
		t.Errorf("status = %q", body.Status)
	}
}

// TestJSONResultFormat checks the default JSON encoding round-trips
// through encoding/json (the API contract for programmatic clients).
func TestJSONResultFormat(t *testing.T) {
	_, ts := newTestServer(t, nil, server.Config{})
	ingest(t, ts.URL, "emp", "sion", `{{ {'name':'Ada','salary':120} }}`)

	status, reply := postQuery(t, ts.URL, `{"query": "SELECT e.name FROM emp AS e"}`)
	if status != http.StatusOK {
		t.Fatalf("status %d (%s)", status, reply.Error)
	}
	var rows []map[string]any
	if err := json.Unmarshal(reply.Result, &rows); err != nil {
		t.Fatalf("result is not a JSON array: %v (%s)", err, reply.Result)
	}
	if len(rows) != 1 || rows[0]["name"] != "Ada" {
		t.Errorf("rows = %v", rows)
	}
}

// TestPlanNotesAndOptimizerOptions checks the physical-optimizer
// surface of the API: join queries report their plan notes, the
// disable_optimizer override suppresses them, and the two configurations
// never share a plan-cache entry.
func TestPlanNotesAndOptimizerOptions(t *testing.T) {
	_, ts := newTestServer(t, nil, server.Config{})
	ingest(t, ts.URL, "emp", "sion", `{{ {'id':1,'dno':1}, {'id':2,'dno':2} }}`)
	ingest(t, ts.URL, "dept", "sion", `{{ {'dno':1,'name':'eng'} }}`)

	join := `SELECT e.id AS id, d.name AS dn FROM emp AS e JOIN dept AS d ON e.dno = d.dno`
	status, reply := postQuery(t, ts.URL,
		`{"query": "`+join+`", "format": "sion"}`)
	if status != http.StatusOK {
		t.Fatalf("status %d (%s)", status, reply.Error)
	}
	if len(reply.Plan) == 0 {
		t.Error("an equi-join should report plan notes")
	}
	hasHash := false
	for _, n := range reply.Plan {
		if strings.HasPrefix(n, "hash-join(") {
			hasHash = true
		}
	}
	if !hasHash {
		t.Errorf("plan notes missing hash-join: %v", reply.Plan)
	}

	status, off := postQuery(t, ts.URL,
		`{"query": "`+join+`", "format": "sion", "options": {"disable_optimizer": true}}`)
	if status != http.StatusOK {
		t.Fatalf("disable_optimizer: status %d (%s)", status, off.Error)
	}
	if len(off.Plan) != 0 {
		t.Errorf("disable_optimizer should suppress plan notes, got %v", off.Plan)
	}
	if off.Cached {
		t.Error("optimizer-off request must not reuse the optimizer-on plan")
	}
	if got, want := sionResult(t, off.Result), sionResult(t, reply.Result); !value.Equivalent(got, want) {
		t.Errorf("optimizer changed the result:\n  on  %s\n  off %s", want, got)
	}

	status, par := postQuery(t, ts.URL,
		`{"query": "`+join+`", "format": "sion", "options": {"parallelism": 2}}`)
	if status != http.StatusOK {
		t.Fatalf("parallelism: status %d (%s)", status, par.Error)
	}
	if par.Cached {
		t.Error("a different parallelism must key a different plan")
	}
}
