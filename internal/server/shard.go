package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"sqlpp"
	"sqlpp/internal/shard"
	"sqlpp/internal/value"
)

// Coordinator returns the scatter-gather coordinator when the server
// runs in coordinator mode, nil otherwise.
func (s *Server) Coordinator() *shard.Coordinator { return s.coord }

// handleShardedQuery is the coordinator-mode execution path: the query
// routes through the scatter-gather coordinator instead of the local
// plan cache, and the response carries the scatter class, the
// missing-shards annotation, and the composite EXPLAIN ANALYZE tree.
func (s *Server) handleShardedQuery(ctx context.Context, w http.ResponseWriter, req queryRequest, opts sqlpp.Options, params map[string]value.Value, explain bool) {
	if req.Vet {
		s.fail(w, http.StatusBadRequest, "vet is not supported in coordinator mode")
		return
	}
	mode, ok := shard.ParseFailMode(req.OnFailure)
	if !ok {
		s.fail(w, http.StatusBadRequest, "unknown on_failure mode %q (want \"fail\" or \"partial\")", req.OnFailure)
		return
	}
	eo := shard.OptionsFrom(opts)
	start := time.Now()
	res, err := s.coord.ExecRequest(ctx, shard.ExecRequest{
		Query:     req.Query,
		Params:    params,
		Options:   &eo,
		Explain:   explain,
		OnFailure: &mode,
	})
	elapsed := time.Since(start)
	if err != nil {
		s.shardedError(w, err, elapsed)
		return
	}
	s.metrics.Observe(elapsed)
	if res.Stats != nil {
		s.metrics.ObserveOps(res.Stats)
	}
	raw, err := encodeResult(res.Value, req.Format)
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, "encode result: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, queryResponse{
		Result:        raw,
		ElapsedUS:     elapsed.Microseconds(),
		Plan:          res.Notes,
		Stats:         res.Stats,
		Sharded:       res.Sharded,
		Class:         res.Class,
		MissingShards: res.MissingShards,
	})
}

// shardedError maps a coordinator failure to a status: deadline → 504,
// governor budget → 422 with the resource detail, contained panic →
// 500, shard failure (retries exhausted, breaker open, or fail-fast
// policy) → 502 Bad Gateway — the coordinator is fine, a data node is
// not.
func (s *Server) shardedError(w http.ResponseWriter, err error, elapsed time.Duration) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		s.metrics.Timeouts.Add(1)
		s.fail(w, http.StatusGatewayTimeout, "query exceeded its deadline after %s: %v", elapsed.Round(time.Millisecond), err)
		return
	}
	var re *sqlpp.ResourceError
	if errors.As(err, &re) {
		s.metrics.Governed.Add(1)
		s.metrics.Errors.Add(1)
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{
			Error: re.Error(),
			Resource: &resourceDetail{
				Kind:     string(re.Kind),
				Site:     re.Site,
				Limit:    re.Limit,
				Observed: re.Observed,
			},
		})
		return
	}
	var pe *sqlpp.PanicError
	if errors.As(err, &pe) {
		s.metrics.Panics.Add(1)
		s.fail(w, http.StatusInternalServerError, "execute: %v", err)
		return
	}
	var se *shard.ShardError
	if errors.As(err, &se) {
		s.fail(w, http.StatusBadGateway, "execute: %v", err)
		return
	}
	s.fail(w, http.StatusUnprocessableEntity, "execute: %v", err)
}

// shardReadiness aggregates the fleet's readiness under the
// partial-failure policy: fail-fast needs every shard ready, partial
// needs at least one. It reports the per-shard states and the unready
// list for the probe body.
func (s *Server) shardReadiness(ctx context.Context) (ready bool, states map[string]string, unready []string) {
	pctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	probes := s.coord.Ready(pctx)
	states = make(map[string]string, len(probes))
	okCount := 0
	for name, err := range probes {
		if err == nil {
			states[name] = "ready"
			okCount++
			continue
		}
		states[name] = err.Error()
		unready = append(unready, name)
	}
	sort.Strings(unready)
	if s.coord.Policy().OnFailure == shard.Partial {
		return okCount > 0, states, unready
	}
	return len(unready) == 0, states, unready
}

// writeShardMetrics renders the coordinator's fault-tolerance counters:
// fleet totals plus per-shard breakdowns, names mangled like the
// sqlpp_op_* gauges.
func (s *Server) writeShardMetrics(w io.Writer) {
	tele := s.coord.Telemetry()
	var retries, hedges, opens, open int64
	for _, t := range tele {
		retries += t.Retries
		hedges += t.Hedges
		opens += t.BreakerOpens
		if t.BreakerOpen {
			open++
		}
	}
	fmt.Fprintf(w, "sqlpp_shard_retries_total %d\n", retries)
	fmt.Fprintf(w, "sqlpp_shard_hedges_total %d\n", hedges)
	fmt.Fprintf(w, "sqlpp_shard_breaker_open %d\n", open)
	fmt.Fprintf(w, "sqlpp_shard_breaker_opens_total %d\n", opens)
	for _, t := range tele {
		id := strings.ReplaceAll(strings.ReplaceAll(t.Shard, "-", "_"), ".", "_")
		openGauge := 0
		if t.BreakerOpen {
			openGauge = 1
		}
		fmt.Fprintf(w, "sqlpp_shard_%s_retries_total %d\n", id, t.Retries)
		fmt.Fprintf(w, "sqlpp_shard_%s_hedges_total %d\n", id, t.Hedges)
		fmt.Fprintf(w, "sqlpp_shard_%s_breaker_open %d\n", id, openGauge)
	}
}
