package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sqlpp"
	"sqlpp/internal/server"
	"sqlpp/internal/shard"
)

// newShardFleet spins up n data-node servers over httptest and returns
// a coordinator speaking the HTTP/JSON protocol to them, with `orders`
// range-partitioned across the fleet.
func newShardFleet(t *testing.T, n int, policy shard.Policy) (*shard.Coordinator, []*httptest.Server) {
	t.Helper()
	execs := make([]shard.Executor, n)
	nodes := make([]*httptest.Server, n)
	for i := range execs {
		node := server.New(sqlpp.New(nil), server.Config{})
		ts := httptest.NewServer(node)
		t.Cleanup(ts.Close)
		nodes[i] = ts
		execs[i] = shard.NewHTTP(fmt.Sprintf("n%d", i), ts.URL, nil)
	}
	co := shard.NewCoordinator(sqlpp.New(nil), policy, execs...)
	orders := sqlpp.MustParseValue(`[
		{'g': 'a', 'v': 1}, {'g': 'b', 'v': 2}, {'g': 'a', 'v': 3},
		{'g': 'c', 'v': 4}, {'g': 'b', 'v': 5}, {'g': 'a', 'v': 6},
		{'g': 'c', 'v': 7}, {'g': 'b', 'v': 8}, {'g': 'a', 'v': 9}
	]`)
	if err := co.Distribute("orders", orders, shard.Spec{}); err != nil {
		t.Fatal(err)
	}
	return co, nodes
}

// postShardQuery posts a /v1/query body and decodes the response.
func postShardQuery(t *testing.T, url string, body map[string]any) (int, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestCoordinatorModeOverHTTP runs the full wire path: coordinator
// server → HTTP data nodes → scatter → merge, and checks the response
// matches single-node execution and carries the scatter annotations.
func TestCoordinatorModeOverHTTP(t *testing.T) {
	co, _ := newShardFleet(t, 3, shard.Policy{})
	coord := httptest.NewServer(server.New(co.Engine(), server.Config{Coordinator: co}))
	defer coord.Close()

	const query = "SELECT x.g AS g, SUM(x.v) AS s, AVG(x.v) AS a FROM orders AS x GROUP BY x.g AS g ORDER BY g"
	single := sqlpp.New(nil)
	if err := single.Register("orders", sqlpp.MustParseValue(`[
		{'g': 'a', 'v': 1}, {'g': 'b', 'v': 2}, {'g': 'a', 'v': 3},
		{'g': 'c', 'v': 4}, {'g': 'b', 'v': 5}, {'g': 'a', 'v': 6},
		{'g': 'c', 'v': 7}, {'g': 'b', 'v': 8}, {'g': 'a', 'v': 9}
	]`)); err != nil {
		t.Fatal(err)
	}
	want, err := single.Query(query)
	if err != nil {
		t.Fatal(err)
	}

	status, out := postShardQuery(t, coord.URL, map[string]any{"query": query, "format": "sion"})
	if status != http.StatusOK {
		t.Fatalf("status %d: %v", status, out)
	}
	if got := out["result"]; got != want.String() {
		t.Fatalf("result %v, want %s", got, want.String())
	}
	if out["class"] != "group" || out["sharded"] != "orders" {
		t.Fatalf("scatter annotations missing: class=%v sharded=%v", out["class"], out["sharded"])
	}
	if _, has := out["missing_shards"]; has {
		t.Fatalf("complete result reported missing shards: %v", out["missing_shards"])
	}

	// EXPLAIN ANALYZE composes the scatter tree over the wire.
	status, out = postShardQuery(t, coord.URL, map[string]any{"query": query, "explain": "analyze"})
	if status != http.StatusOK {
		t.Fatalf("explain status %d: %v", status, out)
	}
	stats, _ := out["stats"].(map[string]any)
	if stats == nil || stats["op"] != "scatter-gather" {
		t.Fatalf("explain stats root = %v, want scatter-gather", out["stats"])
	}
}

// TestCoordinatorPartialPolicyOverHTTP kills one data node and checks
// both failure policies: partial answers with the missing_shards
// annotation, fail surfaces a 502 with a typed shard error.
func TestCoordinatorPartialPolicyOverHTTP(t *testing.T) {
	pol := shard.Policy{MaxAttempts: 2, BaseBackoff: time.Millisecond,
		MaxBackoff: 2 * time.Millisecond, BreakerThreshold: -1}
	co, nodes := newShardFleet(t, 3, pol)
	coord := httptest.NewServer(server.New(co.Engine(), server.Config{Coordinator: co}))
	defer coord.Close()
	nodes[1].Close() // fault one data node: connection refused, transient

	const query = "SELECT x.g AS g, COUNT(*) AS c FROM orders AS x GROUP BY x.g AS g ORDER BY g"
	status, out := postShardQuery(t, coord.URL, map[string]any{"query": query, "on_failure": "partial"})
	if status != http.StatusOK {
		t.Fatalf("partial status %d: %v", status, out)
	}
	missing, _ := out["missing_shards"].([]any)
	if len(missing) != 1 || missing[0] != "n1" {
		t.Fatalf("missing_shards = %v, want [n1]", out["missing_shards"])
	}

	status, out = postShardQuery(t, coord.URL, map[string]any{"query": query, "on_failure": "fail"})
	if status != http.StatusBadGateway {
		t.Fatalf("fail-fast status %d, want 502: %v", status, out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "n1") {
		t.Fatalf("error %q does not name the failed shard", out["error"])
	}

	status, out = postShardQuery(t, coord.URL, map[string]any{"query": query, "on_failure": "bogus"})
	if status != http.StatusBadRequest {
		t.Fatalf("bogus policy status %d, want 400: %v", status, out)
	}
}

// TestCoordinatorReadyzAndMetrics checks the fleet-aggregated readiness
// probe and the per-shard fault-tolerance counters, with one node down.
func TestCoordinatorReadyzAndMetrics(t *testing.T) {
	pol := shard.Policy{MaxAttempts: 2, BaseBackoff: time.Millisecond,
		MaxBackoff: 2 * time.Millisecond, BreakerThreshold: -1}
	co, nodes := newShardFleet(t, 3, pol)
	coord := httptest.NewServer(server.New(co.Engine(), server.Config{Coordinator: co}))
	defer coord.Close()

	readyz := func() (int, map[string]any) {
		resp, err := http.Get(coord.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}
	if status, out := readyz(); status != http.StatusOK {
		t.Fatalf("fleet up: readyz %d %v", status, out)
	}

	nodes[2].Close()
	status, out := readyz()
	if status != http.StatusServiceUnavailable || out["status"] != "shards-unready" {
		t.Fatalf("one node down under fail policy: readyz %d %v", status, out)
	}
	unready, _ := out["unready_shards"].([]any)
	if len(unready) != 1 || unready[0] != "n2" {
		t.Fatalf("unready_shards = %v, want [n2]", out["unready_shards"])
	}

	// Generate some retries so the counters move.
	_, _ = postShardQuery(t, coord.URL, map[string]any{
		"query":      "SELECT VALUE x.v FROM orders AS x WHERE x.v > 3",
		"on_failure": "partial",
	})
	resp, err := http.Get(coord.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"sqlpp_queue_depth ",
		"sqlpp_shard_retries_total 1",
		"sqlpp_shard_breaker_open 0",
		"sqlpp_shard_n2_retries_total 1",
		"sqlpp_shard_n0_retries_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics lack %q:\n%s", want, text)
		}
	}
}

// TestCoordinatorPartialReadyzPolicy checks that the partial policy
// keeps the coordinator ready while any shard survives.
func TestCoordinatorPartialReadyzPolicy(t *testing.T) {
	pol := shard.Policy{OnFailure: shard.Partial, MaxAttempts: 1, BreakerThreshold: -1}
	co, nodes := newShardFleet(t, 2, pol)
	coord := httptest.NewServer(server.New(co.Engine(), server.Config{Coordinator: co}))
	defer coord.Close()
	nodes[0].Close()

	resp, err := http.Get(coord.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial policy with one survivor: readyz %d", resp.StatusCode)
	}
}
