package server

import "net/http"

// Statistics introspection endpoint. Statistics are maintained by the
// catalog itself (built at registration, extended copy-on-write at
// append), so the handler is read-only: it never mutates the catalog or
// the plan cache, and the summaries it returns are snapshots that stay
// coherent even while concurrent ingests replace them.

// handleStatsList reports the per-collection optimizer statistics:
// cardinality, per-path NDV estimates, value-class histograms, and
// MISSING/NULL fractions, exactly as the cost-based planner sees them.
func (s *Server) handleStatsList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"stats": s.engine.Stats()})
}
