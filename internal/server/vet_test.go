package server_test

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"sqlpp"
	"sqlpp/internal/server"
)

type vetReply struct {
	Result      json.RawMessage    `json:"result"`
	Cached      bool               `json:"cached"`
	Diagnostics []sqlpp.Diagnostic `json:"diagnostics"`
	Error       string             `json:"error"`
}

func postVet(t *testing.T, base, body string) (int, vetReply) {
	t.Helper()
	resp, err := http.Post(base+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out vetReply
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode reply: %v", err)
	}
	return resp.StatusCode, out
}

func vetWarningsTotal(t *testing.T, base string) int {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	m := regexp.MustCompile(`(?m)^sqlpp_vet_warnings_total (\d+)$`).FindSubmatch(body)
	if m == nil {
		t.Fatalf("metrics missing sqlpp_vet_warnings_total:\n%s", body)
	}
	n, err := strconv.Atoi(string(m[1]))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestVetOption: "vet": true returns the analyzer's findings alongside
// the result, warnings count into sqlpp_vet_warnings_total, and an
// unvetted request for the same query carries no diagnostics.
func TestVetOption(t *testing.T) {
	_, ts := newTestServer(t, nil, server.Config{})
	ingest(t, ts.URL, "t", "sion", `{{ {'v': 1}, {'v': 2} }}`)

	plain := `{"query": "FROM t AS dead SELECT VALUE 1", "format": "sion"}`
	vetted := `{"query": "FROM t AS dead SELECT VALUE 1", "format": "sion", "vet": true}`

	status, out := postVet(t, ts.URL, plain)
	if status != http.StatusOK {
		t.Fatalf("plain: status %d (%s)", status, out.Error)
	}
	if out.Diagnostics != nil {
		t.Errorf("unvetted request returned diagnostics: %v", out.Diagnostics)
	}

	before := vetWarningsTotal(t, ts.URL)
	status, out = postVet(t, ts.URL, vetted)
	if status != http.StatusOK {
		t.Fatalf("vetted: status %d (%s)", status, out.Error)
	}
	found := false
	for _, d := range out.Diagnostics {
		if d.Code == "unused-binding" && d.Severity == sqlpp.SevWarning {
			found = true
		}
	}
	if !found {
		t.Fatalf("want an unused-binding warning, got %v", out.Diagnostics)
	}
	if after := vetWarningsTotal(t, ts.URL); after <= before {
		t.Errorf("sqlpp_vet_warnings_total did not advance: %d -> %d", before, after)
	}
}

// TestVetRejectsStrictFault: under strict mode a provable type fault is
// rejected at compile time with the diagnostics attached to the error
// response.
func TestVetRejectsStrictFault(t *testing.T) {
	_, ts := newTestServer(t, nil, server.Config{})
	req := `{"query": "FROM [1,2] AS x SELECT VALUE x + 'oops'",
	         "vet": true, "options": {"strict": true}}`
	status, out := postVet(t, ts.URL, req)
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (%s)", status, out.Error)
	}
	if !strings.Contains(out.Error, "vet") {
		t.Errorf("error %q does not mention vet", out.Error)
	}
	if !sqlpp.HasErrors(out.Diagnostics) {
		t.Errorf("rejection should carry error-severity diagnostics, got %v", out.Diagnostics)
	}

	// The same query without vet compiles fine (the fault is dynamic).
	status, out = postVet(t, ts.URL,
		`{"query": "FROM [1,2] AS x SELECT VALUE x + 'oops'", "options": {"strict": true}}`)
	if status == http.StatusBadRequest {
		t.Fatalf("unvetted strict query must not be rejected at compile time: %s", out.Error)
	}
}

// TestVetCacheKeyed: vetted and unvetted compilations of the same text
// occupy distinct plan-cache entries, and a repeated vetted request hits
// its entry while still returning diagnostics (they are cached in the
// prepared query).
func TestVetCacheKeyed(t *testing.T) {
	svc, ts := newTestServer(t, nil, server.Config{})
	ingest(t, ts.URL, "t", "sion", `{{ {'a': 1} }}`)

	plain := `{"query": "SELECT VALUE r.a FROM t AS r", "format": "sion"}`
	vetted := `{"query": "SELECT VALUE r.a FROM t AS r", "format": "sion", "vet": true}`

	if status, out := postVet(t, ts.URL, plain); status != http.StatusOK {
		t.Fatalf("plain: status %d (%s)", status, out.Error)
	}
	if status, out := postVet(t, ts.URL, vetted); status != http.StatusOK {
		t.Fatalf("vetted: status %d (%s)", status, out.Error)
	} else if out.Cached {
		t.Error("first vetted request claims a cache hit — vet must not share the plain entry")
	}
	if svc.Cache().Len() != 2 {
		t.Errorf("cache entries = %d, want 2 (plain and vetted keyed apart)", svc.Cache().Len())
	}
	status, again := postVet(t, ts.URL, vetted)
	if status != http.StatusOK {
		t.Fatalf("vetted again: status %d (%s)", status, again.Error)
	}
	if !again.Cached {
		t.Error("second vetted request missed the cache")
	}
}
