//go:build faultinject

package shard

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"sqlpp"
	"sqlpp/internal/faultinject"
)

// chaosQuery splits into the group class: shard partials, coordinator
// merge, both fault surfaces (shard-exec and shard-gather-next) on the
// path.
const chaosQuery = "SELECT x.g AS g, SUM(x.v) AS s, COUNT(*) AS c FROM data AS x GROUP BY x.g AS g ORDER BY g"

// newChaosCluster builds a 3-shard cluster with a deterministic
// heterogeneous dataset.
func newChaosCluster(t *testing.T, pol Policy) *Coordinator {
	t.Helper()
	data := sqlpp.MustParseValue(`[
		{'g': 'a', 'v': 1}, {'g': 'b', 'v': 2}, {'g': 'a', 'v': 3},
		{'g': 'c', 'v': 4}, {'v': 5}, {'g': 'b', 'v': 6},
		{'g': 'c', 'v': 7}, {'g': 'a', 'v': 8}, 42
	]`)
	co := NewLocalCluster(3, nil, pol)
	if err := co.Distribute("data", data, Spec{}); err != nil {
		t.Fatal(err)
	}
	return co
}

// chaosWaitGoroutines polls for the goroutine count to return to base,
// catching leaked shard attempts.
func chaosWaitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > base {
		t.Errorf("goroutines leaked: %d before, %d after", base, after)
	}
}

// TestChaosShardSweep drives error, panic, and stall schedules through
// the scatter-gather fault points. Every armed run must end in a typed
// error or a policy-conformant partial result — never a hang or a
// crashed process — disarmed reruns must reproduce the baseline
// byte-for-byte, and the circuit breaker must open and recover
// deterministically under an injected failure storm.
func TestChaosShardSweep(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	baseGoroutines := runtime.NumGoroutine()

	fast := Policy{MaxAttempts: 3, BaseBackoff: time.Millisecond,
		MaxBackoff: 2 * time.Millisecond, BreakerThreshold: -1}
	baselineCo := newChaosCluster(t, fast)
	base, err := baselineCo.Exec(context.Background(), chaosQuery)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	baseline := base.Value.String()

	t.Run("error-exhausts-retries-fail-fast", func(t *testing.T) {
		co := newChaosCluster(t, fast)
		faultinject.Set(faultinject.ShardExec, 0, 1, 0, faultinject.Action{Err: faultinject.ErrInjected})
		defer faultinject.Reset()
		_, err := co.Exec(context.Background(), chaosQuery)
		var serr *ShardError
		if !errors.As(err, &serr) {
			t.Fatalf("want *ShardError, got %v", err)
		}
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("want injected root cause, got %v", err)
		}
		if serr.Attempts != fast.MaxAttempts {
			t.Fatalf("attempts = %d, want %d", serr.Attempts, fast.MaxAttempts)
		}
		faultinject.Reset()
		res, err := co.Exec(context.Background(), chaosQuery)
		if err != nil || res.Value.String() != baseline {
			t.Fatalf("disarmed rerun: err=%v got %v want %s", err, res, baseline)
		}
	})

	t.Run("partial-policy-annotates-faulted-shard", func(t *testing.T) {
		pol := fast
		pol.MaxAttempts = 1
		pol.OnFailure = Partial
		co := newChaosCluster(t, pol)
		// Exactly one trigger with one attempt per shard: one shard drops
		// out, the other two settle into an annotated partial result.
		faultinject.Set(faultinject.ShardExec, 0, 1, 1, faultinject.Action{Err: faultinject.ErrInjected})
		defer faultinject.Reset()
		res, err := co.Exec(context.Background(), chaosQuery)
		if err != nil {
			t.Fatalf("partial policy must not fail with survivors: %v", err)
		}
		if len(res.MissingShards) != 1 {
			t.Fatalf("missing shards = %v, want exactly one", res.MissingShards)
		}
		found := false
		for _, n := range res.Notes {
			if n == "missing_shards: "+res.MissingShards[0] {
				found = true
			}
		}
		if !found {
			t.Fatalf("notes %v lack missing_shards annotation", res.Notes)
		}
		if got := faultinject.Fired(faultinject.ShardExec); got != 1 {
			t.Fatalf("fired = %d, want 1", got)
		}
	})

	t.Run("limited-errors-recover-bit-identical", func(t *testing.T) {
		co := newChaosCluster(t, fast)
		// Two triggers against nine retry slots: wherever they land, the
		// retry loop absorbs them and the merged result is untouched.
		faultinject.Set(faultinject.ShardExec, 0, 1, 2, faultinject.Action{Err: faultinject.ErrInjected})
		defer faultinject.Reset()
		res, err := co.Exec(context.Background(), chaosQuery)
		if err != nil {
			t.Fatalf("retries should recover: %v", err)
		}
		if got := res.Value.String(); got != baseline {
			t.Fatalf("armed-but-recovered result diverged:\n got  %s\n want %s", got, baseline)
		}
		if len(res.MissingShards) != 0 {
			t.Fatalf("recovered run reported missing shards %v", res.MissingShards)
		}
		if got := faultinject.Fired(faultinject.ShardExec); got != 2 {
			t.Fatalf("fired = %d, want 2", got)
		}
		var retries int64
		for _, tl := range co.Telemetry() {
			retries += tl.Retries
		}
		if retries != 2 {
			t.Fatalf("telemetry retries = %d, want 2", retries)
		}
	})

	t.Run("panic-contained-and-retried", func(t *testing.T) {
		co := newChaosCluster(t, fast)
		faultinject.Set(faultinject.ShardExec, 0, 1, 1, faultinject.Action{Panic: "chaos"})
		defer faultinject.Reset()
		res, err := co.Exec(context.Background(), chaosQuery)
		if err != nil {
			t.Fatalf("one panic must be absorbed by a retry: %v", err)
		}
		if got := res.Value.String(); got != baseline {
			t.Fatalf("post-panic result diverged:\n got  %s\n want %s", got, baseline)
		}
	})

	t.Run("panic-exhausts-into-typed-error", func(t *testing.T) {
		pol := fast
		pol.MaxAttempts = 2
		co := newChaosCluster(t, pol)
		faultinject.Set(faultinject.ShardExec, 0, 1, 0, faultinject.Action{Panic: "chaos"})
		defer faultinject.Reset()
		_, err := co.Exec(context.Background(), chaosQuery)
		var serr *ShardError
		if !errors.As(err, &serr) {
			t.Fatalf("want *ShardError, got %v", err)
		}
		var perr *sqlpp.PanicError
		if !errors.As(err, &perr) {
			t.Fatalf("want wrapped *PanicError, got %v", err)
		}
	})

	t.Run("gather-fold-error-is-typed", func(t *testing.T) {
		co := newChaosCluster(t, fast)
		faultinject.Set(faultinject.ShardGatherNext, 0, 1, 1, faultinject.Action{Err: faultinject.ErrInjected})
		defer faultinject.Reset()
		_, err := co.Exec(context.Background(), chaosQuery)
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("want injected gather error, got %v", err)
		}
		faultinject.Reset()
		res, err := co.Exec(context.Background(), chaosQuery)
		if err != nil || res.Value.String() != baseline {
			t.Fatalf("disarmed rerun: err=%v want %s", err, baseline)
		}
	})

	t.Run("gather-fold-panic-is-contained", func(t *testing.T) {
		co := newChaosCluster(t, fast)
		faultinject.Set(faultinject.ShardGatherNext, 0, 1, 1, faultinject.Action{Panic: "chaos"})
		defer faultinject.Reset()
		_, err := co.Exec(context.Background(), chaosQuery)
		var perr *sqlpp.PanicError
		if !errors.As(err, &perr) {
			t.Fatalf("want coordinator *PanicError, got %v", err)
		}
		faultinject.Reset()
		res, err := co.Exec(context.Background(), chaosQuery)
		if err != nil || res.Value.String() != baseline {
			t.Fatalf("disarmed rerun: err=%v want %s", err, baseline)
		}
	})

	t.Run("stall-bounded-by-deadline", func(t *testing.T) {
		pol := fast
		pol.MaxAttempts = 2
		co := newChaosCluster(t, pol)
		faultinject.Set(faultinject.ShardExec, 0, 1, 0, faultinject.Action{Sleep: 400 * time.Millisecond})
		defer faultinject.Reset()
		ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
		defer cancel()
		start := time.Now()
		_, err := co.Exec(ctx, chaosQuery)
		elapsed := time.Since(start)
		if err == nil {
			t.Fatal("stalled scatter must miss its deadline")
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("want deadline exceeded, got %v", err)
		}
		if elapsed > 3*time.Second {
			t.Fatalf("stalled scatter took %v; deadline did not bound it", elapsed)
		}
	})

	t.Run("breaker-opens-and-recovers-deterministically", func(t *testing.T) {
		var mu sync.Mutex
		now := time.Unix(0, 0)
		clock := func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return now
		}
		advance := func(d time.Duration) {
			mu.Lock()
			now = now.Add(d)
			mu.Unlock()
		}
		pol := Policy{
			MaxAttempts:      1,
			BreakerThreshold: 2,
			BreakerCooldown:  time.Minute,
			OnFailure:        FailFast,
		}.WithClock(clock, func(context.Context, time.Duration) error { return nil })
		co := newChaosCluster(t, pol)
		faultinject.Set(faultinject.ShardExec, 0, 1, 0, faultinject.Action{Err: faultinject.ErrInjected})

		// Two failing queries × one attempt per shard reach the threshold
		// and trip every breaker.
		for i := 0; i < 2; i++ {
			if _, err := co.Exec(context.Background(), chaosQuery); err == nil {
				t.Fatal("armed query must fail")
			}
		}
		for _, tl := range co.Telemetry() {
			if !tl.BreakerOpen || tl.BreakerOpens != 1 {
				t.Fatalf("shard %s: open=%v opens=%d, want open after threshold", tl.Shard, tl.BreakerOpen, tl.BreakerOpens)
			}
		}

		// While open, calls fail fast without touching the shards.
		fired := faultinject.Fired(faultinject.ShardExec)
		if _, err := co.Exec(context.Background(), chaosQuery); !errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("want breaker-open error, got %v", err)
		}
		if got := faultinject.Fired(faultinject.ShardExec); got != fired {
			t.Fatalf("open breaker still contacted shards: fired %d -> %d", fired, got)
		}

		// Past the cooldown with the fault disarmed, the half-open probe
		// succeeds, the breakers close, and results match the baseline.
		faultinject.Reset()
		advance(2 * time.Minute)
		res, err := co.Exec(context.Background(), chaosQuery)
		if err != nil {
			t.Fatalf("probe after cooldown: %v", err)
		}
		if got := res.Value.String(); got != baseline {
			t.Fatalf("post-recovery result diverged:\n got  %s\n want %s", got, baseline)
		}
		for _, tl := range co.Telemetry() {
			if tl.BreakerOpen {
				t.Fatalf("shard %s breaker still open after recovery", tl.Shard)
			}
		}
	})

	chaosWaitGoroutines(t, baseGoroutines)
}
