package shard

import (
	"context"
	"fmt"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sqlpp"
	"sqlpp/internal/eval"
	"sqlpp/internal/faultinject"
	"sqlpp/internal/plan"
	"sqlpp/internal/value"
)

// Coordinator owns a fleet of shard executors plus a local engine for
// unsharded collections, and runs queries across them with the
// scatter-gather decomposition and the fault-tolerance policy. A
// Coordinator is safe for concurrent queries; Distribute/Broadcast
// require the same external coordination as Engine.Register.
type Coordinator struct {
	engine *sqlpp.Engine
	execs  []Executor
	policy Policy
	jitter *jitterSource

	mu    sync.RWMutex
	specs map[string]Spec

	breakers []*breaker
	tele     []*shardTelemetry

	planMu    sync.Mutex
	planCache map[string]*scatterPlan
}

// shardTelemetry accumulates one shard's fault-tolerance counters over
// the coordinator's lifetime.
type shardTelemetry struct {
	retries atomic.Int64
	hedges  atomic.Int64
}

// Telemetry is one shard's cumulative fault-tolerance counters, for
// metrics export.
type Telemetry struct {
	// Shard names the executor.
	Shard string
	// Retries counts retried attempts across all queries.
	Retries int64
	// Hedges counts hedged (duplicate) attempts launched for stragglers.
	Hedges int64
	// BreakerOpen reports whether the circuit breaker currently rejects
	// calls.
	BreakerOpen bool
	// BreakerOpens counts closed→open transitions.
	BreakerOpens int64
}

// NewCoordinator wraps engine (the coordinator-local catalog) and the
// shard executors under policy.
// governor:bounded by the shard count (one breaker/telemetry slot per executor)
func NewCoordinator(engine *sqlpp.Engine, policy Policy, execs ...Executor) *Coordinator {
	c := &Coordinator{
		engine:    engine,
		execs:     execs,
		policy:    policy.filled(),
		jitter:    newJitterSource(policy.Seed),
		specs:     map[string]Spec{},
		planCache: map[string]*scatterPlan{},
	}
	for range execs {
		c.breakers = append(c.breakers, &breaker{})
		c.tele = append(c.tele, &shardTelemetry{})
	}
	return c
}

// NewLocalCluster builds a coordinator over n in-process shard engines
// named s0…s<n-1>, each created with opts — the single-binary topology
// and the benchmark/test substrate.
func NewLocalCluster(n int, opts *sqlpp.Options, policy Policy) *Coordinator {
	execs := make([]Executor, n)
	for i := range execs {
		execs[i] = NewLocal("s"+strconv.Itoa(i), sqlpp.New(opts))
	}
	return NewCoordinator(sqlpp.New(opts), policy, execs...)
}

// Engine exposes the coordinator-local engine (unsharded registrations,
// options).
func (c *Coordinator) Engine() *sqlpp.Engine { return c.engine }

// Shards lists the shard executor names in shard order.
func (c *Coordinator) Shards() []string {
	out := make([]string, len(c.execs))
	for i, x := range c.execs {
		out[i] = x.Name()
	}
	return out
}

// Policy returns the coordinator's fault-tolerance policy.
func (c *Coordinator) Policy() Policy { return c.policy }

// Specs lists the sharded-collection specs.
// governor:bounded by the number of sharded collections (catalog-sized, set at Distribute time)
func (c *Coordinator) Specs() []Spec {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Spec, 0, len(c.specs))
	for _, s := range c.specs {
		out = append(out, s)
	}
	return out
}

// Telemetry reports per-shard fault-tolerance counters (no I/O; safe on
// the metrics path).
func (c *Coordinator) Telemetry() []Telemetry {
	out := make([]Telemetry, len(c.execs))
	for i, x := range c.execs {
		out[i] = Telemetry{
			Shard:        x.Name(),
			Retries:      c.tele[i].retries.Load(),
			Hedges:       c.tele[i].hedges.Load(),
			BreakerOpen:  c.breakers[i].isOpen(),
			BreakerOpens: c.breakers[i].openCount(),
		}
	}
	return out
}

// Ready probes every shard concurrently and reports per-shard errors
// (nil entries are ready). An open circuit breaker counts as unready
// without contacting the shard.
func (c *Coordinator) Ready(ctx context.Context) map[string]error {
	out := make([]error, len(c.execs))
	var wg sync.WaitGroup
	for i, x := range c.execs {
		if c.breakers[i].isOpen() {
			out[i] = ErrBreakerOpen
			continue
		}
		wg.Add(1)
		go func(i int, x Executor) {
			defer wg.Done()
			out[i] = x.Ready(ctx)
		}(i, x)
	}
	wg.Wait()
	m := make(map[string]error, len(c.execs))
	for i, x := range c.execs {
		m[x.Name()] = out[i]
	}
	return m
}

// Distribute partitions v per spec across the shards, installs each
// part, and records the spec (and the shard metadata in the catalog, so
// plan-cache epochs see topology changes).
func (c *Coordinator) Distribute(name string, v value.Value, spec Spec) error {
	spec.Name = name
	parts, err := Partition(v, spec, len(c.execs))
	if err != nil {
		return err
	}
	for i, x := range c.execs {
		if err := x.Register(name, parts[i]); err != nil {
			return err
		}
	}
	c.mu.Lock()
	c.specs[name] = spec
	c.mu.Unlock()
	return c.engine.SetShardMeta(name, sqlpp.ShardMeta{
		Kind:   spec.Kind.String(),
		Key:    spec.Key,
		Shards: len(c.execs),
	})
}

// Broadcast replicates an unsharded collection to every shard and the
// coordinator, so shard-local plans can join against it.
func (c *Coordinator) Broadcast(name string, v value.Value) error {
	for _, x := range c.execs {
		if err := x.Register(name, v); err != nil {
			return err
		}
	}
	return c.engine.Register(name, v)
}

// ExecRequest carries one coordinator query.
type ExecRequest struct {
	// Query is the SQL++ text.
	Query string
	// Params binds parameterized-query names; parameterized queries over
	// sharded collections run through the gather path.
	Params map[string]value.Value
	// Options overrides the coordinator engine's options for this
	// request (nil keeps them).
	Options *ExecOptions
	// Explain requests the composite EXPLAIN ANALYZE tree.
	Explain bool
	// OnFailure overrides the policy's partial-failure mode for this
	// request (nil keeps it).
	OnFailure *FailMode
}

// Result is a coordinator query's answer.
type Result struct {
	// Value is the merged result.
	Value value.Value
	// Class is the scatter class that ran: local, group, topk, concat,
	// or gather.
	Class string
	// Sharded names the collection that drove the scatter ("" for
	// local).
	Sharded string
	// MissingShards lists, in shard order, the shards whose data is
	// absent from a partial-policy result. Empty on complete results.
	MissingShards []string
	// Notes describes the scatter decomposition (plan annotations).
	Notes []string
	// Stats is the composite EXPLAIN ANALYZE tree when Explain was set.
	Stats *eval.StatsSnapshot
}

// Exec runs one query with default request settings.
func (c *Coordinator) Exec(ctx context.Context, query string) (*Result, error) {
	return c.ExecRequest(ctx, ExecRequest{Query: query})
}

// ExecRequest runs one query across the fleet: classify, scatter under
// the fault-tolerance policy, merge. A panic anywhere on the
// coordinator path degrades into the query's *PanicError instead of
// killing the process, mirroring the engine's own panic barrier.
func (c *Coordinator) ExecRequest(ctx context.Context, req ExecRequest) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("shard coordinator: %w",
				&eval.PanicError{Val: r, Stack: debug.Stack()})
		}
	}()
	opts := c.engine.Options()
	if req.Options != nil {
		opts = req.Options.apply(opts)
	}
	mode := c.policy.OnFailure
	if req.OnFailure != nil {
		mode = *req.OnFailure
	}
	sp := c.plan(req.Query)
	switch sp.class {
	case "local":
		return c.execLocal(ctx, req, opts)
	case "gather":
		return c.execGather(ctx, req, opts, mode, sp)
	default:
		return c.execSplit(ctx, req, opts, mode, sp)
	}
}

// plan classifies the query, caching by query text and catalog epoch
// (registrations and topology changes bump the epoch).
func (c *Coordinator) plan(query string) *scatterPlan {
	key := strconv.FormatInt(c.engine.IndexEpoch(), 10) + "\x00" + query
	c.planMu.Lock()
	if p, ok := c.planCache[key]; ok {
		c.planMu.Unlock()
		return p
	}
	c.planMu.Unlock()
	c.mu.RLock()
	specs := make(map[string]Spec, len(c.specs))
	for k, v := range c.specs {
		specs[k] = v
	}
	c.mu.RUnlock()
	p := classify(query, specs)
	c.planMu.Lock()
	if len(c.planCache) >= 256 {
		c.planCache = map[string]*scatterPlan{}
	}
	c.planCache[key] = p
	c.planMu.Unlock()
	return p
}

// execLocal runs a query that references no sharded collection on the
// coordinator engine.
func (c *Coordinator) execLocal(ctx context.Context, req ExecRequest, opts sqlpp.Options) (*Result, error) {
	eng := c.engine.WithOptions(opts)
	v, st, err := runOn(ctx, eng, req.Query, req.Params, req.Explain)
	if err != nil {
		return nil, err
	}
	res := &Result{Value: v, Class: "local", Stats: st,
		Notes: []string{"scatter: class=local (no sharded collection referenced)"}}
	return res, nil
}

// runOn prepares and executes query on eng, with or without params and
// instrumentation.
// governor:bounded by the request's parameter count (the name list); row production is governed inside the engine
func runOn(ctx context.Context, eng *sqlpp.Engine, query string, params map[string]value.Value, explain bool) (value.Value, *eval.StatsSnapshot, error) {
	if len(params) > 0 {
		names := make([]string, 0, len(params))
		for n := range params {
			names = append(names, n)
		}
		p, err := eng.PrepareParams(query, names...)
		if err != nil {
			return nil, nil, err
		}
		if explain {
			return p.ExplainAnalyze(ctx, params)
		}
		v, err := p.ExecContext(ctx, params)
		return v, nil, err
	}
	p, err := eng.Prepare(query)
	if err != nil {
		return nil, nil, err
	}
	if explain {
		return p.ExplainAnalyze(ctx)
	}
	v, err := p.ExecContext(ctx)
	return v, nil, err
}

// shardOutcome is one shard's final state after the retry loop.
type shardOutcome struct {
	resp     *Response
	err      error
	attempts int64
	retries  int64
	hedges   int64
}

// scatter runs query on every shard under the fault-tolerance policy
// and returns the outcomes in shard order.
func (c *Coordinator) scatter(ctx context.Context, query string, opts ExecOptions, explain bool) []shardOutcome {
	out := make([]shardOutcome, len(c.execs))
	var wg sync.WaitGroup
	for i := range c.execs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = c.callShard(ctx, i, Request{Query: query, Options: opts, Explain: explain})
		}(i)
	}
	wg.Wait()
	return out
}

// callShard runs one shard request through the retry/backoff/breaker
// loop: bounded attempts, exponential backoff with jitter honoring
// Retry-After hints, per-attempt deadlines carved from the remaining
// query budget, and a circuit breaker that fails fast while open.
func (c *Coordinator) callShard(ctx context.Context, i int, req Request) shardOutcome {
	p := c.policy
	br := c.breakers[i]
	x := c.execs[i]
	var o shardOutcome
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			o.err = fmt.Errorf("shard %s: %w", x.Name(), err)
			return o
		}
		var err error
		if !br.allow(p) {
			// Fail fast without consuming the shard's time; the breaker
			// half-opens by itself after the cooldown, so a later retry (or
			// query) probes.
			err = Transient(fmt.Errorf("shard %s: %w", x.Name(), ErrBreakerOpen))
		} else {
			o.attempts++
			var resp *Response
			var hedged int64
			resp, hedged, err = c.attempt(ctx, x, req, attempt)
			o.hedges += hedged
			c.tele[i].hedges.Add(hedged)
			if err == nil {
				br.onSuccess()
				o.resp = resp
				o.err = nil
				return o
			}
			br.onFailure(p)
		}
		hint, transient := IsTransient(err)
		o.err = err
		if !transient || attempt >= p.MaxAttempts {
			return o
		}
		o.retries++
		c.tele[i].retries.Add(1)
		if serr := p.sleep(ctx, c.jitter.backoff(p, attempt, hint)); serr != nil {
			return o
		}
	}
}

// attempt runs one (possibly hedged) shard execution. The attempt
// deadline is the remaining query budget divided by the remaining
// attempts, so every retry still fits inside the caller's deadline.
// When hedging is enabled and the primary has not answered within
// HedgeAfter, an identical secondary launches; the first answer wins
// and the loser's context is cancelled.
func (c *Coordinator) attempt(ctx context.Context, x Executor, req Request, attempt int) (*Response, int64, error) {
	p := c.policy
	actx := ctx
	cancel := context.CancelFunc(func() {})
	if dl, ok := ctx.Deadline(); ok {
		left := p.MaxAttempts - attempt + 1
		now := p.now()
		per := dl.Sub(now) / time.Duration(left)
		actx, cancel = context.WithDeadline(ctx, now.Add(per))
	} else {
		actx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	type res struct {
		r   *Response
		err error
	}
	ch := make(chan res, 2) // buffered: a losing attempt never blocks
	launch := func() {
		// Panic barrier: a panic inside an executor (including an armed
		// shard-exec fault) is a transient shard failure, not a process
		// crash — the retry loop gets a chance to recover it.
		defer func() {
			if rec := recover(); rec != nil {
				ch <- res{nil, Transient(fmt.Errorf("shard %s: %w", x.Name(),
					&eval.PanicError{Val: rec, Stack: debug.Stack()}))}
			}
		}()
		r, err := x.Exec(actx, req)
		ch <- res{r, err}
	}
	go launch()
	inflight := 1
	var hedges int64
	var timerC <-chan time.Time
	if p.HedgeAfter > 0 {
		t := time.NewTimer(p.HedgeAfter)
		defer t.Stop()
		timerC = t.C
	}
	var lastErr error
	for {
		select {
		case r := <-ch:
			if r.err == nil {
				return r.r, hedges, nil
			}
			lastErr = r.err
			inflight--
			if inflight == 0 {
				return nil, hedges, lastErr
			}
		case <-actx.Done():
			// Abandon a stalled attempt at the deadline instead of waiting
			// for it to notice: the buffered channel lets the stragglers
			// finish and exit on their own, and the retry loop decides
			// whether the remaining budget buys another attempt.
			return nil, hedges, Transient(fmt.Errorf("shard %s: %w", x.Name(), actx.Err()))
		case <-timerC:
			timerC = nil
			hedges++
			inflight++
			go launch()
		}
	}
}

// execSplit runs the split scatter classes (group/topk/concat): shard
// query on every shard, fold the partials in shard order, merge query
// on an ephemeral engine.
func (c *Coordinator) execSplit(ctx context.Context, req ExecRequest, opts sqlpp.Options, mode FailMode, sp *scatterPlan) (*Result, error) {
	outs := c.scatter(ctx, sp.shardQuery, scatterOptions(opts), req.Explain)
	missing, err := c.settle(outs, mode)
	if err != nil {
		return nil, err
	}

	// Fold the partial rows in shard order; under range partitioning
	// this preserves global row order, which is what makes merged
	// results byte-identical to single-node execution.
	gov := eval.NewGovernor(opts.Limits)
	var partials []value.Value
	var stats []plan.ShardStat
	for i, o := range outs {
		st := plan.ShardStat{
			Name:     c.execs[i].Name(),
			Attempts: o.attempts,
			Retries:  o.retries,
			Hedges:   o.hedges,
			Failed:   o.err != nil,
		}
		if o.resp != nil {
			elems, ok := value.Elements(o.resp.Value)
			if !ok {
				return nil, fmt.Errorf("shard %s: partial result is not a collection", c.execs[i].Name())
			}
			for _, e := range elems {
				if faultinject.Enabled {
					if ferr := faultinject.Fire(faultinject.ShardGatherNext); ferr != nil {
						return nil, fmt.Errorf("shard gather: %w", ferr)
					}
				}
				if gov != nil {
					if gerr := gov.ChargeValues("shard-gather", 1, e); gerr != nil {
						return nil, gerr
					}
				}
				partials = append(partials, e)
			}
			st.Rows = int64(len(elems))
			st.Tree = o.resp.Stats
		}
		stats = append(stats, st)
	}

	meng, err := c.ephemeral(opts, map[string]value.Value{partialsName: value.Bag(partials)}, false)
	if err != nil {
		return nil, err
	}
	v, mst, err := runOn(ctx, meng, sp.mergeQuery, nil, req.Explain)
	if err != nil {
		return nil, fmt.Errorf("shard merge: %w", err)
	}
	res := &Result{
		Value:         v,
		Class:         sp.class,
		Sharded:       sp.sharded,
		MissingShards: missing,
		Notes:         c.notes(sp, mode, missing),
	}
	if req.Explain {
		res.Stats = plan.ScatterStats(sp.class, sp.sharded, stats, missing, mst)
	}
	return res, nil
}

// execGather runs the always-correct fallback: pull each sharded
// collection's parts back whole, reassemble them in shard order, and
// run the original query (params and all) on an ephemeral engine that
// sees the same catalog a single node would.
func (c *Coordinator) execGather(ctx context.Context, req ExecRequest, opts sqlpp.Options, mode FailMode, sp *scatterPlan) (*Result, error) {
	gov := eval.NewGovernor(opts.Limits)
	gathered := map[string]value.Value{}
	var stats []plan.ShardStat
	var missing []string
	for _, name := range sp.gather {
		outs := c.scatter(ctx, name, scatterOptions(opts), false)
		m, err := c.settle(outs, mode)
		if err != nil {
			return nil, err
		}
		missing = mergeMissing(missing, m)
		var elems []value.Value
		isArray := false
		for i, o := range outs {
			st := plan.ShardStat{
				Name:     c.execs[i].Name(),
				Attempts: o.attempts,
				Retries:  o.retries,
				Hedges:   o.hedges,
				Failed:   o.err != nil,
			}
			if o.resp != nil {
				part, ok := value.Elements(o.resp.Value)
				if !ok {
					return nil, fmt.Errorf("shard %s: gathered %s is not a collection", c.execs[i].Name(), name)
				}
				if o.resp.Value.Kind() == value.KindArray {
					isArray = true
				}
				for _, e := range part {
					if faultinject.Enabled {
						if ferr := faultinject.Fire(faultinject.ShardGatherNext); ferr != nil {
							return nil, fmt.Errorf("shard gather: %w", ferr)
						}
					}
					if gov != nil {
						if gerr := gov.ChargeValues("shard-gather", 1, e); gerr != nil {
							return nil, gerr
						}
					}
					elems = append(elems, e)
				}
				st.Rows = int64(len(part))
			}
			stats = append(stats, st)
		}
		if isArray {
			gathered[name] = value.Array(elems)
		} else {
			gathered[name] = value.Bag(elems)
		}
	}

	geng, err := c.ephemeral(opts, gathered, true)
	if err != nil {
		return nil, err
	}
	v, gst, err := runOn(ctx, geng, req.Query, req.Params, req.Explain)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Value:         v,
		Class:         "gather",
		Sharded:       sp.gather[0],
		MissingShards: missing,
		Notes:         c.notes(sp, mode, missing),
	}
	if req.Explain {
		res.Stats = plan.ScatterStats("gather", sp.gather[0], stats, missing, gst)
	}
	return res, nil
}

// governor:bounded by the shard count (one outcome per shard)
// settle applies the partial-failure policy to a scatter's outcomes:
// fail-fast surfaces the first failure as a *ShardError; partial
// requires at least one success and reports the failed shards, in
// shard order, as missing.
func (c *Coordinator) settle(outs []shardOutcome, mode FailMode) ([]string, error) {
	var missing []string
	ok := 0
	for i, o := range outs {
		if o.err == nil {
			ok++
			continue
		}
		if mode == FailFast {
			return nil, &ShardError{Shard: c.execs[i].Name(), Attempts: int(o.attempts), Err: o.err}
		}
		missing = append(missing, c.execs[i].Name())
	}
	if ok == 0 && len(outs) > 0 {
		for i, o := range outs {
			if o.err != nil {
				return nil, &ShardError{Shard: c.execs[i].Name(), Attempts: int(o.attempts), Err: o.err}
			}
		}
	}
	return missing, nil
}

// mergeMissing unions two shard-ordered missing lists, preserving
// order.
// governor:bounded by the shard count (missing lists name shards)
func mergeMissing(a, b []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range append(a, b...) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// scatterOptions derives the per-shard option slice: row/byte budgets
// stay coordinator-side (a per-shard budget would reject partials that
// merge into a legal result); the per-attempt deadline is the per-shard
// backpressure.
func scatterOptions(opts sqlpp.Options) ExecOptions {
	eo := OptionsFrom(opts)
	eo.MaxRows = 0
	eo.MaxBytes = 0
	return eo
}

// ephemeral builds a per-query engine holding extras plus (for gathers,
// which re-run the original query) the coordinator's own collections.
// Values are immutable, so copying a catalog is pointer-cheap.
func (c *Coordinator) ephemeral(opts sqlpp.Options, extras map[string]value.Value, withLocal bool) (*sqlpp.Engine, error) {
	eng := sqlpp.New(&opts)
	if withLocal {
		for _, name := range c.engine.Names() {
			if _, shadowed := extras[name]; shadowed {
				continue
			}
			if v, ok := c.engine.Lookup(name); ok {
				if err := eng.Register(name, v); err != nil {
					return nil, err
				}
			}
		}
	}
	for name, v := range extras {
		if err := eng.Register(name, v); err != nil {
			return nil, err
		}
	}
	return eng, nil
}

// notes renders the scatter decomposition as plan annotations.
func (c *Coordinator) notes(sp *scatterPlan, mode FailMode, missing []string) []string {
	out := []string{fmt.Sprintf("scatter: class=%s collection=%s shards=%d policy=%s",
		sp.class, sp.sharded, len(c.execs), mode)}
	if sp.shardQuery != "" {
		out = append(out, "shard query: "+sp.shardQuery)
	}
	if sp.mergeQuery != "" {
		out = append(out, "merge query: "+sp.mergeQuery)
	}
	if len(sp.gather) > 0 {
		out = append(out, "gather: sharded collections pulled whole, original query re-run")
	}
	if len(missing) > 0 {
		out = append(out, "missing_shards: "+strings.Join(missing, ","))
	}
	return out
}
