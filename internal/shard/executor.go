package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"sqlpp"
	"sqlpp/internal/eval"
	"sqlpp/internal/faultinject"
	"sqlpp/internal/value"
)

// ExecOptions is the per-request slice of engine options a coordinator
// forwards to every shard, so a request-level compat/strict/limit
// override applies uniformly across the fleet.
type ExecOptions struct {
	Compat           bool
	Strict           bool
	DisableOptimizer bool
	NoCompile        bool
	NoStats          bool
	Parallelism      int
	MaxRows          int64
	MaxBytes         int64
}

// OptionsFrom extracts the forwardable slice of engine options.
func OptionsFrom(o sqlpp.Options) ExecOptions {
	return ExecOptions{
		Compat:           o.Compat,
		Strict:           o.StopOnError,
		DisableOptimizer: o.DisableOptimizer,
		NoCompile:        o.NoCompile,
		NoStats:          o.NoStats,
		Parallelism:      o.Parallelism,
		MaxRows:          o.Limits.MaxOutputRows,
		MaxBytes:         o.Limits.MaxMaterializedBytes,
	}
}

// apply overlays the forwarded options onto an engine's base options.
func (eo ExecOptions) apply(base sqlpp.Options) sqlpp.Options {
	base.Compat = eo.Compat
	base.StopOnError = eo.Strict
	base.DisableOptimizer = eo.DisableOptimizer
	base.NoCompile = eo.NoCompile
	base.NoStats = eo.NoStats
	base.Parallelism = eo.Parallelism
	base.Limits.MaxOutputRows = eo.MaxRows
	base.Limits.MaxMaterializedBytes = eo.MaxBytes
	return base
}

// Request is one shard-level query execution.
type Request struct {
	// Query is SQL++ text (a per-shard split, or a bare collection name
	// for gathers).
	Query string
	// Options forwards the request-level engine options.
	Options ExecOptions
	// Explain asks for the per-operator stats tree alongside the result.
	Explain bool
}

// Response is a shard's answer.
type Response struct {
	// Value is the query result.
	Value value.Value
	// Stats is the shard-local EXPLAIN ANALYZE tree when Explain was set
	// (and the transport carries one).
	Stats *eval.StatsSnapshot
}

// Executor runs queries on one shard. Implementations must be safe for
// concurrent use; hedged requests run two Execs at once.
type Executor interface {
	// Name identifies the shard in errors, annotations, and metrics.
	Name() string
	// Exec runs one query under ctx. Errors that may succeed on retry
	// (transport failures, shedding, attempt deadlines) are marked with
	// Transient; all others are treated as semantic and final.
	Exec(ctx context.Context, req Request) (*Response, error)
	// Ready probes whether the shard can serve queries.
	Ready(ctx context.Context) error
	// Register installs a collection on the shard (data distribution).
	Register(name string, v value.Value) error
}

// transientErr marks an error as retryable and optionally carries a
// shard's Retry-After backoff hint.
type transientErr struct {
	err        error
	retryAfter time.Duration
}

func (t *transientErr) Error() string { return t.err.Error() }
func (t *transientErr) Unwrap() error { return t.err }

// Transient marks err as retryable.
func Transient(err error) error { return &transientErr{err: err} }

// TransientHint marks err as retryable with a shard-supplied minimum
// backoff (the Retry-After of a shedding shard).
func TransientHint(err error, retryAfter time.Duration) error {
	return &transientErr{err: err, retryAfter: retryAfter}
}

// IsTransient reports whether err is retryable, and any Retry-After
// hint attached to it.
func IsTransient(err error) (time.Duration, bool) {
	var t *transientErr
	if errors.As(err, &t) {
		return t.retryAfter, true
	}
	return 0, false
}

// LocalExecutor runs shard queries on an in-process engine — the
// single-binary topology, and the deterministic substrate for tests
// and benchmarks.
type LocalExecutor struct {
	name   string
	engine *sqlpp.Engine
}

// NewLocal wraps an engine as a shard executor.
func NewLocal(name string, engine *sqlpp.Engine) *LocalExecutor {
	return &LocalExecutor{name: name, engine: engine}
}

// Name identifies the shard.
func (x *LocalExecutor) Name() string { return x.name }

// Engine exposes the underlying engine (tests, data loading).
func (x *LocalExecutor) Engine() *sqlpp.Engine { return x.engine }

// Ready reports readiness; an in-process engine always is.
func (x *LocalExecutor) Ready(ctx context.Context) error { return nil }

// Register installs a collection on the shard's engine.
func (x *LocalExecutor) Register(name string, v value.Value) error {
	return x.engine.Register(name, v)
}

// Exec runs the query on the shard engine under ctx. The shard-exec
// fault point models a transport failure: its injected errors are
// transient, exercising the retry path.
func (x *LocalExecutor) Exec(ctx context.Context, req Request) (*Response, error) {
	if faultinject.Enabled {
		if err := faultinject.Fire(faultinject.ShardExec); err != nil {
			return nil, Transient(fmt.Errorf("shard %s: %w", x.name, err))
		}
	}
	eng := x.engine.WithOptions(req.Options.apply(x.engine.Options()))
	p, err := eng.Prepare(req.Query)
	if err != nil {
		return nil, fmt.Errorf("shard %s: compile: %w", x.name, err)
	}
	if req.Explain {
		v, st, err := p.ExplainAnalyze(ctx)
		if err != nil {
			return nil, x.classify(err)
		}
		return &Response{Value: v, Stats: st}, nil
	}
	v, err := p.ExecContext(ctx)
	if err != nil {
		return nil, x.classify(err)
	}
	return &Response{Value: v}, nil
}

// classify wraps execution errors: deadline expiry and recovered panics
// are transient (a retry may land inside the remaining budget or on a
// healthy replica); semantic errors are final.
func (x *LocalExecutor) classify(err error) error {
	wrapped := fmt.Errorf("shard %s: %w", x.name, err)
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return Transient(wrapped)
	}
	var pe *sqlpp.PanicError
	if errors.As(err, &pe) {
		return Transient(wrapped)
	}
	return wrapped
}

// HTTPExecutor runs shard queries on a remote sqlpp-serve data node
// through the existing HTTP/JSON protocol. Results travel in the
// paper's object notation (format "sion"), which is lossless for
// MISSING and bag/array kinds, so remote shards merge bit-identically
// to local ones. The data node's own admission gate, governor, and
// deadline machinery provide per-shard backpressure; its 429 +
// Retry-After shedding surfaces here as a transient error carrying the
// backoff hint.
type HTTPExecutor struct {
	name   string
	base   string
	client *http.Client
}

// NewHTTP builds an executor for the data node at baseURL (e.g.
// "http://10.0.0.7:8642"). client nil uses a dedicated default client.
func NewHTTP(name, baseURL string, client *http.Client) *HTTPExecutor {
	if client == nil {
		client = &http.Client{}
	}
	return &HTTPExecutor{name: name, base: trimSlash(baseURL), client: client}
}

// trimSlash trims a trailing slash so path joins stay canonical.
func trimSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}

// Name identifies the shard.
func (x *HTTPExecutor) Name() string { return x.name }

// Ready probes GET /readyz.
func (x *HTTPExecutor) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, x.base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := x.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shard %s: readyz %s", x.name, resp.Status)
	}
	return nil
}

// Register ingests the collection on the data node in object notation.
func (x *HTTPExecutor) Register(name string, v value.Value) error {
	u := x.base + "/v1/collections/" + url.PathEscape(name) + "?format=sion"
	resp, err := x.client.Post(u, "text/plain", bytes.NewBufferString(v.String()))
	if err != nil {
		return fmt.Errorf("shard %s: register %s: %w", x.name, name, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("shard %s: register %s: %s: %s", x.name, name, resp.Status, bytes.TrimSpace(body))
	}
	return nil
}

// wireRequest mirrors the server's queryRequest.
type wireRequest struct {
	Query     string      `json:"query"`
	Options   wireOptions `json:"options"`
	TimeoutMS int64       `json:"timeout_ms,omitempty"`
	Format    string      `json:"format"`
	Explain   string      `json:"explain,omitempty"`
}

// wireOptions mirrors the server's queryOptions (pointer fields so the
// node's own defaults are overridden explicitly).
type wireOptions struct {
	Compat           *bool  `json:"compat"`
	Strict           *bool  `json:"strict"`
	DisableOptimizer *bool  `json:"disable_optimizer"`
	NoCompile        *bool  `json:"no_compile"`
	NoStats          *bool  `json:"no_stats"`
	Parallelism      *int   `json:"parallelism"`
	MaxRows          *int64 `json:"max_rows"`
	MaxBytes         *int64 `json:"max_bytes"`
}

// wireResponse mirrors the server's queryResponse/errorResponse union.
type wireResponse struct {
	Result json.RawMessage     `json:"result"`
	Stats  *eval.StatsSnapshot `json:"stats"`
	Error  string              `json:"error"`
}

// Exec posts the query to the data node and decodes the sion result.
func (x *HTTPExecutor) Exec(ctx context.Context, req Request) (*Response, error) {
	if faultinject.Enabled {
		if err := faultinject.Fire(faultinject.ShardExec); err != nil {
			return nil, Transient(fmt.Errorf("shard %s: %w", x.name, err))
		}
	}
	wr := wireRequest{
		Query:  req.Query,
		Format: "sion",
		Options: wireOptions{
			Compat:           &req.Options.Compat,
			Strict:           &req.Options.Strict,
			DisableOptimizer: &req.Options.DisableOptimizer,
			NoCompile:        &req.Options.NoCompile,
			NoStats:          &req.Options.NoStats,
			Parallelism:      &req.Options.Parallelism,
			MaxRows:          &req.Options.MaxRows,
			MaxBytes:         &req.Options.MaxBytes,
		},
	}
	if req.Explain {
		wr.Explain = "analyze"
	}
	// Forward the attempt deadline so the data node's governor stops the
	// query server-side too, not only at the client socket.
	if dl, ok := ctx.Deadline(); ok {
		// noclock: the wire timeout must be relative to the real clock the
		// HTTP transport enforces the deadline against; chaos tests stub
		// the Executor itself, so no fake-clock schedule flows through.
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		wr.TimeoutMS = ms
	}
	body, err := json.Marshal(wr)
	if err != nil {
		return nil, fmt.Errorf("shard %s: encode: %w", x.name, err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, x.base+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("shard %s: %w", x.name, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := x.client.Do(hreq)
	if err != nil {
		// Transport-level failure: connection refused, reset, deadline.
		return nil, Transient(fmt.Errorf("shard %s: %w", x.name, err))
	}
	defer hresp.Body.Close()
	raw, err := io.ReadAll(hresp.Body)
	if err != nil {
		return nil, Transient(fmt.Errorf("shard %s: read response: %w", x.name, err))
	}
	var wresp wireResponse
	if err := json.Unmarshal(raw, &wresp); err != nil && hresp.StatusCode == http.StatusOK {
		return nil, fmt.Errorf("shard %s: decode response: %w", x.name, err)
	}
	if hresp.StatusCode != http.StatusOK {
		msg := wresp.Error
		if msg == "" {
			msg = hresp.Status
		}
		ferr := fmt.Errorf("shard %s: %s", x.name, msg)
		switch hresp.StatusCode {
		case http.StatusTooManyRequests:
			// A shedding shard names its own backoff; honor it.
			return nil, TransientHint(ferr, parseRetryAfter(hresp.Header.Get("Retry-After")))
		case http.StatusServiceUnavailable, http.StatusGatewayTimeout,
			http.StatusInternalServerError, http.StatusBadGateway:
			return nil, Transient(ferr)
		}
		return nil, ferr
	}
	// format "sion" returns the rendered text as a JSON string; parse it
	// back to a value losslessly.
	var text string
	if err := json.Unmarshal(wresp.Result, &text); err != nil {
		return nil, fmt.Errorf("shard %s: decode result: %w", x.name, err)
	}
	v, err := sqlpp.ParseValue(text)
	if err != nil {
		return nil, fmt.Errorf("shard %s: parse result: %w", x.name, err)
	}
	return &Response{Value: v, Stats: wresp.Stats}, nil
}

// parseRetryAfter parses a whole-seconds Retry-After header; 0 when
// absent or malformed.
func parseRetryAfter(s string) time.Duration {
	if s == "" {
		return 0
	}
	secs, err := strconv.ParseInt(s, 10, 64)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
