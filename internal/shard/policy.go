package shard

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// FailMode selects what a scatter does when a shard stays down after
// retries.
type FailMode int

const (
	// FailFast aborts the query with a *ShardError naming the shard.
	FailFast FailMode = iota
	// Partial answers from the shards that responded and annotates the
	// result with the missing shards — the paper's configurable-semantics
	// stance applied to availability: the caller opts into incomplete
	// data explicitly and can see exactly what is missing.
	Partial
)

// String names the mode for annotations and metrics.
func (m FailMode) String() string {
	if m == Partial {
		return "partial"
	}
	return "fail"
}

// ParseFailMode parses "fail" or "partial".
func ParseFailMode(s string) (FailMode, bool) {
	switch s {
	case "fail", "":
		return FailFast, true
	case "partial":
		return Partial, true
	}
	return FailFast, false
}

// Policy tunes the fault-tolerance layer around a scatter. The zero
// value selects the defaults noted on each field.
type Policy struct {
	// MaxAttempts bounds tries per shard per query, including the first.
	// Default: 3. Only transient failures (transport errors, shed 429s,
	// per-attempt deadline expiry) are retried; semantic query errors are
	// not — they would fail identically again.
	MaxAttempts int
	// BaseBackoff is the first retry's backoff; each subsequent retry
	// doubles it up to MaxBackoff, then jitter in [1/2, 1) of the value
	// is applied. A Retry-After hint from a shedding shard raises the
	// backoff to at least the hint. Default: 25ms, capped at 1s.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff. Default: 1s.
	MaxBackoff time.Duration
	// HedgeAfter launches a second, identical attempt when the first has
	// not answered within this duration; the first response wins and the
	// loser is cancelled. 0 disables hedging.
	HedgeAfter time.Duration
	// BreakerThreshold opens a shard's circuit breaker after this many
	// consecutive failed attempts; while open, calls fail immediately
	// without contacting the shard. After BreakerCooldown the breaker
	// goes half-open and admits one probe. Default: 5; negative disables.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects before probing.
	// Default: 1s.
	BreakerCooldown time.Duration
	// OnFailure selects fail-fast or annotated partial results.
	OnFailure FailMode
	// Seed makes retry jitter deterministic for tests; 0 uses a fixed
	// default seed (jitter only runs on retries, so fault-free execution
	// consumes no randomness).
	Seed int64

	// now and sleep are injectable for deterministic tests; nil selects
	// time.Now and a context-aware timer sleep.
	now   func() time.Time
	sleep func(context.Context, time.Duration) error
}

// WithClock returns a copy of p using now for breaker/backoff decisions
// and sleep for retry waits — the chaos battery's determinism hook.
func (p Policy) WithClock(now func() time.Time, sleep func(context.Context, time.Duration) error) Policy {
	p.now = now
	p.sleep = sleep
	return p
}

// filled normalizes defaults.
func (p Policy) filled() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 25 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	if p.BreakerThreshold == 0 {
		p.BreakerThreshold = 5
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = time.Second
	}
	if p.now == nil {
		// noclock: this is the WithClock injection seam itself — the one
		// place the real clock is allowed to enter the shard layer.
		p.now = time.Now
	}
	if p.sleep == nil {
		p.sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	return p
}

// jitterSource is a mutex-guarded deterministic PRNG shared by a
// coordinator's retries.
type jitterSource struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newJitterSource(seed int64) *jitterSource {
	if seed == 0 {
		seed = 1
	}
	return &jitterSource{rng: rand.New(rand.NewSource(seed))}
}

// backoff computes the wait before retry number retry (1-based), as
// exponential growth with half-to-full jitter, raised to at least the
// shard's Retry-After hint when one was given.
func (j *jitterSource) backoff(p Policy, retry int, hint time.Duration) time.Duration {
	d := p.BaseBackoff << (retry - 1)
	if d > p.MaxBackoff || d <= 0 {
		d = p.MaxBackoff
	}
	j.mu.Lock()
	d = d/2 + time.Duration(j.rng.Int63n(int64(d/2)+1))
	j.mu.Unlock()
	if hint > d {
		d = hint
	}
	return d
}

// breaker is a per-shard circuit breaker: closed → open after
// BreakerThreshold consecutive failures → half-open (one probe) after
// BreakerCooldown → closed on probe success or open again on failure.
type breaker struct {
	mu       sync.Mutex
	failures int
	state    breakerState
	openedAt time.Time
	opens    int64
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// allow reports whether a call may proceed; a false return means the
// breaker is open and the caller should fail fast with ErrBreakerOpen.
func (b *breaker) allow(p Policy) bool {
	if p.BreakerThreshold < 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if p.now().Sub(b.openedAt) >= p.BreakerCooldown {
			// Half-open: admit exactly one probe; concurrent callers keep
			// failing fast until the probe resolves.
			b.state = breakerHalfOpen
			return true
		}
		return false
	case breakerHalfOpen:
		return false
	}
	return true
}

// onSuccess records a successful attempt.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	b.failures = 0
	b.state = breakerClosed
	b.mu.Unlock()
}

// onFailure records a failed attempt, opening the breaker at the
// threshold (and re-opening after a failed half-open probe).
func (b *breaker) onFailure(p Policy) {
	if p.BreakerThreshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	if b.state == breakerHalfOpen || b.failures >= p.BreakerThreshold {
		if b.state != breakerOpen {
			b.opens++
		}
		b.state = breakerOpen
		b.openedAt = p.now()
	}
}

// isOpen reports whether the breaker currently rejects calls.
func (b *breaker) isOpen() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerOpen || b.state == breakerHalfOpen
}

// openCount reports how many times the breaker has transitioned to
// open.
func (b *breaker) openCount() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
