package shard

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"sqlpp"
	"sqlpp/internal/compat"
	"sqlpp/internal/value"
)

// randomCatalog renders a heterogeneous collection in object notation:
// tuples with mixed-type group keys, sometimes-missing measures,
// occasional non-numeric measures (exercising the permissive type-fault
// propagation through the merge), nested tuples, and bare scalars.
func randomCatalog(rng *rand.Rand) string {
	n := rng.Intn(51)
	rows := make([]string, 0, n)
	keys := []string{"'a'", "'b'", "'c'", "1", "2", "'missing-key'"}
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0: // bare scalar row: .g and .v navigate to MISSING
			rows = append(rows, fmt.Sprintf("%d", rng.Intn(100)))
		case 1: // no group key
			rows = append(rows, fmt.Sprintf("{'v': %d}", rng.Intn(100)))
		case 2: // non-numeric measure: SUM/AVG type-fault to MISSING
			rows = append(rows, fmt.Sprintf("{'g': %s, 'v': 'oops'}", keys[rng.Intn(len(keys))]))
		case 3: // nested tuple measure
			rows = append(rows, fmt.Sprintf("{'g': %s, 'v': %d, 'w': {'z': %d}}",
				keys[rng.Intn(len(keys))], rng.Intn(100), rng.Intn(10)))
		default:
			rows = append(rows, fmt.Sprintf("{'g': %s, 'v': %d}", keys[rng.Intn(len(keys))], rng.Intn(100)))
		}
	}
	return "[" + strings.Join(rows, ", ") + "]"
}

// propertyQueries is the merge-decomposition surface under test: every
// split class, integer measures (float SUM re-association is the
// documented caveat), aggregate decomposition including AVG and the
// MISSING fault guard, HAVING, ORDER BY, LIMIT/OFFSET, DISTINCT.
var propertyQueries = []string{
	"SELECT x.g AS g, COUNT(*) AS c, SUM(x.v) AS s, MIN(x.v) AS mn, MAX(x.v) AS mx FROM data AS x GROUP BY x.g AS g",
	"SELECT x.g AS g, AVG(x.v) AS a FROM data AS x GROUP BY x.g AS g",
	"SELECT g, COUNT(*) AS c FROM data AS x GROUP BY x.g AS g HAVING COUNT(*) > 1 ORDER BY g, c",
	"SELECT COUNT(*) AS c, SUM(x.v) AS s, AVG(x.v) AS a, MIN(x.v) AS mn, MAX(x.v) AS mx FROM data AS x",
	"SELECT x.g AS g, SUM(x.v) AS s FROM data AS x WHERE x.v >= 0 GROUP BY x.g AS g ORDER BY s DESC, g LIMIT 3",
	"SELECT VALUE x.v FROM data AS x ORDER BY x.v DESC LIMIT 7 OFFSET 1",
	"SELECT VALUE x FROM data AS x ORDER BY x.v, x.g LIMIT 5",
	"SELECT VALUE x.v FROM data AS x WHERE x.v > 10",
	"SELECT DISTINCT x.g AS g FROM data AS x",
	"SELECT x.g AS g, x.v AS v FROM data AS x WHERE x.v > 50 LIMIT 4",
}

// TestPropertyShardedIdentity is the merge-correctness property test:
// across 200 randomized heterogeneous catalogs × shard counts, every
// query's sharded result under range partitioning is byte-identical to
// single-node execution.
func TestPropertyShardedIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(20240817))
	for iter := 0; iter < 200; iter++ {
		src := randomCatalog(rng)
		shards := 1 + rng.Intn(6)
		data, err := sqlpp.ParseValue(src)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		single := sqlpp.New(nil)
		if err := single.Register("data", data); err != nil {
			t.Fatal(err)
		}
		co := NewLocalCluster(shards, nil, Policy{})
		if err := co.Distribute("data", data, Spec{}); err != nil {
			t.Fatal(err)
		}
		query := propertyQueries[iter%len(propertyQueries)]
		want, werr := single.Query(query)
		res, gerr := co.Exec(context.Background(), query)
		if (werr != nil) != (gerr != nil) {
			t.Fatalf("iter %d shards=%d %q:\n data %s\n single err=%v sharded err=%v",
				iter, shards, query, src, werr, gerr)
		}
		if werr != nil {
			continue
		}
		if got := res.Value.String(); got != want.String() {
			t.Fatalf("iter %d shards=%d class=%s %q:\n data %s\n got  %s\n want %s\n notes %v",
				iter, shards, res.Class, query, src, got, want.String(), res.Notes)
		}
	}
}

// TestPropertyHashPartitioning checks hash partitioning: results are
// deterministic for a fixed topology and equal to single-node execution
// as a multiset (hash placement may permute first-seen orders, so
// order-insensitive queries compare sorted).
func TestPropertyHashPartitioning(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	queries := []string{
		"SELECT x.g AS g, COUNT(*) AS c, SUM(x.v) AS s FROM data AS x GROUP BY x.g AS g",
		"SELECT VALUE x.v FROM data AS x WHERE x.v > 20",
		"SELECT DISTINCT x.g AS g FROM data AS x",
	}
	for iter := 0; iter < 40; iter++ {
		src := randomCatalog(rng)
		shards := 2 + rng.Intn(4)
		data := sqlpp.MustParseValue(src)
		single := sqlpp.New(nil)
		if err := single.Register("data", data); err != nil {
			t.Fatal(err)
		}
		run := func() *Coordinator {
			co := NewLocalCluster(shards, nil, Policy{})
			if err := co.Distribute("data", data, Spec{Kind: Hash, Key: "g"}); err != nil {
				t.Fatal(err)
			}
			return co
		}
		coA, coB := run(), run()
		for _, q := range queries {
			want, werr := single.Query(q)
			ra, ea := coA.Exec(context.Background(), q)
			rb, eb := coB.Exec(context.Background(), q)
			if (werr != nil) != (ea != nil) || (ea != nil) != (eb != nil) {
				t.Fatalf("iter %d %q: errs single=%v a=%v b=%v", iter, q, werr, ea, eb)
			}
			if werr != nil {
				continue
			}
			if ra.Value.String() != rb.Value.String() {
				t.Fatalf("iter %d %q: hash run not deterministic:\n a %s\n b %s",
					iter, q, ra.Value.String(), rb.Value.String())
			}
			if got, wantS := sortedElems(t, ra.Value), sortedElems(t, want); got != wantS {
				t.Fatalf("iter %d %q: hash multiset mismatch:\n data %s\n got  %s\n want %s",
					iter, q, src, got, wantS)
			}
		}
	}
}

// sortedElems renders a collection's elements sorted, for multiset
// comparison.
func sortedElems(t *testing.T, v value.Value) string {
	t.Helper()
	elems, ok := value.Elements(v)
	if !ok {
		return v.String()
	}
	out := make([]string, len(elems))
	for i, e := range elems {
		out[i] = e.String()
	}
	sort.Strings(out)
	return strings.Join(out, ";")
}

// TestPaperListingsUnchangedBySharding runs the full conformance suite
// — the paper's 28 listings plus the SQL-compat, null/missing, and
// semantics batteries — through a 3-shard coordinator and requires the
// exact behavior (value or error) of a single-node engine with the same
// data, in both engine modes.
func TestPaperListingsUnchangedBySharding(t *testing.T) {
	cases := compat.Suite()
	if len(cases) < len(compat.PaperCases()) {
		t.Fatalf("suite has %d cases, fewer than the paper listings", len(cases))
	}
	for _, c := range cases {
		for _, compatMode := range []bool{false, true} {
			if c.Mode == compat.Core && compatMode {
				continue
			}
			if c.Mode == compat.Compat && !compatMode {
				continue
			}
			opts := &sqlpp.Options{Compat: compatMode, StopOnError: c.Strict}
			single := sqlpp.New(opts)
			co := NewLocalCluster(3, opts, Policy{})
			for name, src := range c.Data {
				v, err := sqlpp.ParseValue(src)
				if err != nil {
					t.Fatalf("%s: data %s: %v", c.Name, name, err)
				}
				if err := single.Register(name, v); err != nil {
					t.Fatalf("%s: %v", c.Name, err)
				}
				if _, isColl := value.Elements(v); isColl {
					if err := co.Distribute(name, v, Spec{}); err != nil {
						t.Fatalf("%s: distribute %s: %v", c.Name, name, err)
					}
				} else if err := co.Broadcast(name, v); err != nil {
					t.Fatalf("%s: broadcast %s: %v", c.Name, name, err)
				}
			}
			want, werr := single.Query(c.Query)
			res, gerr := co.Exec(context.Background(), c.Query)
			if (werr != nil) != (gerr != nil) {
				t.Errorf("%s (compat=%v): single err=%v sharded err=%v", c.Name, compatMode, werr, gerr)
				continue
			}
			if werr != nil {
				continue
			}
			if got := res.Value.String(); got != want.String() {
				t.Errorf("%s (compat=%v) class=%s:\n got  %s\n want %s",
					c.Name, compatMode, res.Class, got, want.String())
			}
		}
	}
}
