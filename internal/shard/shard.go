// Package shard implements fault-tolerant scatter-gather execution of
// SQL++ queries over partitioned collections.
//
// A Coordinator owns a set of shard Executors (in-process engines or
// remote sqlpp-serve instances speaking the HTTP/JSON protocol) plus a
// registry mapping collection names to partitioning specs. A query that
// ranges over a sharded collection is split into a per-shard query and
// a merge query:
//
//   - grouped aggregates run locally per shard and merge globally with
//     the COLL_* decomposition (COUNT → SUM of counts, SUM → SUM of
//     partial sums, AVG → SUM/COUNT pairs, MIN/MAX associatively);
//   - ORDER BY … LIMIT runs as local top-(limit+offset) per shard with
//     a coordinator-side merge re-sort;
//   - everything else streams back and concatenates in shard order;
//   - queries the splitter cannot prove mergeable fall back to
//     gathering the sharded collections whole and running the original
//     query unchanged, so every query stays correct.
//
// Under range (row-chunk) partitioning, merged results are
// byte-identical to single-node execution: chunking preserves row
// order, so GROUP BY first-seen order, ORDER BY tie order, and
// LIMIT/OFFSET windows reconstruct exactly. Hash partitioning keeps
// results deterministic for a fixed topology but may permute
// first-seen orders. Floating-point SUM/AVG re-associate across shards
// and may differ in the last ulp; integer aggregates are exact.
//
// The scatter is wrapped in a fault-tolerance layer (see Policy):
// per-shard deadlines derived from the query budget, bounded retries
// with exponential backoff + jitter that honor Retry-After hints from
// shedding shards, optional hedged requests for stragglers, a
// per-shard circuit breaker, and an explicit partial-failure policy
// (fail, or partial results annotated with the missing shards).
package shard

import (
	"fmt"
	"hash/fnv"
	"strings"

	"sqlpp/internal/value"
)

// Kind selects how a collection's elements are assigned to shards.
type Kind int

const (
	// Range partitions by row position into contiguous chunks, one per
	// shard, preserving global element order across the shard sequence.
	// This is the default and the only kind whose scatter-gather results
	// are byte-identical to single-node execution.
	Range Kind = iota
	// Hash partitions by the FNV-1a hash of the canonical encoding of
	// each element's key path (Spec.Key). Rows with equal keys land on
	// the same shard; global element order is not preserved.
	Hash
)

// String names the kind for specs and metrics.
func (k Kind) String() string {
	if k == Hash {
		return "hash"
	}
	return "range"
}

// ParseKind parses "range" or "hash".
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(s) {
	case "range", "":
		return Range, nil
	case "hash":
		return Hash, nil
	}
	return Range, fmt.Errorf("shard: unknown partitioning kind %q (want range or hash)", s)
}

// Spec declares how one collection is partitioned across the
// coordinator's shards.
type Spec struct {
	// Name is the (possibly dotted) collection name.
	Name string
	// Kind selects range (row chunks) or hash partitioning.
	Kind Kind
	// Key is the dotted path hashed under Hash partitioning (e.g.
	// "addr.zip"); ignored for Range.
	Key string
}

// Partition splits v's elements into n subcollections per spec,
// preserving v's array/bag kind on every part. Elements whose key path
// is MISSING or NULL hash on that absent value, so equal-keyed rows
// stay colocated.
// governor:data-sized at Distribute time — the ingest path, same trust as Engine.Register
func Partition(v value.Value, spec Spec, n int) ([]value.Value, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard: partition %s into %d shards", spec.Name, n)
	}
	elems, ok := value.Elements(v)
	if !ok {
		return nil, fmt.Errorf("shard: %s is not a collection (%v)", spec.Name, v.Kind())
	}
	parts := make([][]value.Value, n)
	switch spec.Kind {
	case Hash:
		path := strings.Split(spec.Key, ".")
		for _, e := range elems {
			i := hashBucket(keyAt(e, path), n)
			parts[i] = append(parts[i], e)
		}
	default: // Range: contiguous chunks, ceil-sized so early shards fill first.
		per := (len(elems) + n - 1) / n
		for i := range parts {
			lo := i * per
			hi := lo + per
			if lo > len(elems) {
				lo = len(elems)
			}
			if hi > len(elems) {
				hi = len(elems)
			}
			parts[i] = elems[lo:hi]
		}
	}
	out := make([]value.Value, n)
	isArray := v.Kind() == value.KindArray
	for i, p := range parts {
		part := append([]value.Value(nil), p...)
		if isArray {
			out[i] = value.Array(part)
		} else {
			out[i] = value.Bag(part)
		}
	}
	return out, nil
}

// keyAt navigates e along the dotted path, yielding MISSING where
// navigation fails — the same absent-key slotting the secondary indexes
// use, so partitioning never errors on heterogeneous rows.
func keyAt(e value.Value, path []string) value.Value {
	cur := e
	for _, step := range path {
		if step == "" {
			continue
		}
		t, ok := cur.(*value.Tuple)
		if !ok {
			return value.Missing
		}
		v, ok := t.Get(step)
		if !ok {
			return value.Missing
		}
		cur = v
	}
	return cur
}

// hashBucket maps a key value to a shard index by FNV-1a over its
// canonical encoding (value.AppendKey), so values that compare equal
// hash equal regardless of representation.
func hashBucket(k value.Value, n int) int {
	h := fnv.New64a()
	h.Write(value.AppendKey(nil, k))
	return int(h.Sum64() % uint64(n))
}

// ShardError reports a scatter aborted by a shard failure under the
// fail policy. Unwrap exposes the underlying cause, so errors.Is/As
// reach through to context deadlines, resource errors, and injected
// faults.
type ShardError struct {
	// Shard names the failing shard executor.
	Shard string
	// Attempts is how many attempts ran before giving up.
	Attempts int
	// Err is the last attempt's error.
	Err error
}

// Error describes the failure.
func (e *ShardError) Error() string {
	return fmt.Sprintf("shard %s failed after %d attempt(s): %v", e.Shard, e.Attempts, e.Err)
}

// Unwrap exposes the last attempt's error.
func (e *ShardError) Unwrap() error { return e.Err }

// ErrBreakerOpen is the cause recorded when a shard's circuit breaker
// rejects a call without attempting it.
var ErrBreakerOpen = fmt.Errorf("shard: circuit breaker open")
