package shard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"sqlpp"
	"sqlpp/internal/value"
)

// mustValue parses object notation or fails the test.
func mustValue(t *testing.T, src string) value.Value {
	t.Helper()
	v, err := sqlpp.ParseValue(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return v
}

func TestPartitionRangePreservesOrderAndKind(t *testing.T) {
	v := mustValue(t, "[1, 2, 3, 4, 5, 6, 7]")
	parts, err := Partition(v, Spec{Name: "xs"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	var back []string
	for _, p := range parts {
		if p.Kind() != value.KindArray {
			t.Fatalf("part kind = %v, want array", p.Kind())
		}
		elems, _ := value.Elements(p)
		for _, e := range elems {
			back = append(back, e.String())
		}
	}
	if got := strings.Join(back, ","); got != "1,2,3,4,5,6,7" {
		t.Fatalf("reassembled = %s", got)
	}
}

func TestPartitionHashColocatesEqualKeys(t *testing.T) {
	v := mustValue(t, "{{ {'k': 'a', 'n': 1}, {'k': 'b', 'n': 2}, {'k': 'a', 'n': 3}, {'n': 4}, {'n': 5} }}")
	parts, err := Partition(v, Spec{Name: "xs", Kind: Hash, Key: "k"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	at := map[string]int{} // key rendering -> shard index
	total := 0
	for i, p := range parts {
		if p.Kind() != value.KindBag {
			t.Fatalf("part kind = %v, want bag", p.Kind())
		}
		elems, _ := value.Elements(p)
		total += len(elems)
		for _, e := range elems {
			tp := e.(*value.Tuple)
			key := "missing"
			if kv, ok := tp.Get("k"); ok {
				key = kv.String()
			}
			if prev, seen := at[key]; seen && prev != i {
				t.Fatalf("key %s split across shards %d and %d", key, prev, i)
			}
			at[key] = i
		}
	}
	if total != 5 {
		t.Fatalf("total = %d", total)
	}
}

func TestPartitionRejectsNonCollection(t *testing.T) {
	if _, err := Partition(value.Int(3), Spec{Name: "xs"}, 2); err == nil {
		t.Fatal("expected error for scalar")
	}
}

// identityCatalog is the targeted-identity test fixture: a heterogeneous
// orders collection plus an unsharded dims table.
const ordersSrc = `[
  {'g': 'a', 'v': 3, 'w': 1.5},
  {'g': 'b', 'v': 1},
  {'g': 'a', 'v': 7, 'w': 2.5},
  {'g': 'c', 'v': 2, 'extra': [1,2]},
  {'g': 'b', 'v': 9},
  {'g': 'a', 'v': 4},
  {'v': 100},
  {'g': 'c', 'v': 5},
  {'g': 'missing-v'},
  {'g': 'b', 'v': 2},
  {'g': 'a', 'v': 1},
  {'g': 'c', 'v': 8}
]`

const dimsSrc = `[
  {'k': 'a', 'label': 'alpha'},
  {'k': 'b', 'label': 'beta'},
  {'k': 'c', 'label': 'gamma'}
]`

// newIdentityPair builds a single-node engine and an equivalent sharded
// coordinator (range partitioning, n shards).
func newIdentityPair(t *testing.T, n int, opts *sqlpp.Options) (*sqlpp.Engine, *Coordinator) {
	t.Helper()
	single := sqlpp.New(opts)
	if err := single.Register("orders", mustValue(t, ordersSrc)); err != nil {
		t.Fatal(err)
	}
	if err := single.Register("dims", mustValue(t, dimsSrc)); err != nil {
		t.Fatal(err)
	}
	co := NewLocalCluster(n, opts, Policy{})
	if err := co.Distribute("orders", mustValue(t, ordersSrc), Spec{}); err != nil {
		t.Fatal(err)
	}
	if err := co.Broadcast("dims", mustValue(t, dimsSrc)); err != nil {
		t.Fatal(err)
	}
	return single, co
}

// identityQueries pairs query text with the scatter class it should
// classify to — and every one of them must be byte-identical to
// single-node execution under range partitioning.
var identityQueries = []struct {
	query string
	class string
}{
	{"SELECT x.g AS g, COUNT(*) AS c, SUM(x.v) AS s FROM orders AS x GROUP BY x.g AS g", "group"},
	{"SELECT x.g AS g, AVG(x.v) AS a, MIN(x.v) AS mn, MAX(x.v) AS mx FROM orders AS x GROUP BY x.g AS g", "group"},
	{"SELECT g, SUM(x.v) AS s FROM orders AS x GROUP BY x.g AS g HAVING COUNT(*) > 2 ORDER BY g LIMIT 2", "group"},
	{"SELECT x.g AS g, COUNT(*) AS c FROM orders AS x WHERE x.v > 1 GROUP BY x.g AS g ORDER BY c DESC, g", "group"},
	{"SELECT COUNT(*) AS c, SUM(x.v) AS s, AVG(x.v) AS a FROM orders AS x", "group"},
	{"SELECT MIN(x.v) AS mn, MAX(x.v) AS mx FROM orders AS x WHERE x.g = 'a'", "group"},
	{"SELECT x.g AS g, COUNT(*) AS c FROM orders AS x JOIN dims AS d ON x.g = d.k GROUP BY x.g AS g", "group"},
	{"SELECT VALUE x.v FROM orders AS x WHERE x.v > 1 ORDER BY x.v DESC LIMIT 4", "topk"},
	{"SELECT VALUE x.v FROM orders AS x ORDER BY x.v LIMIT 3 OFFSET 2", "topk"},
	{"SELECT x.g AS g, x.v AS v FROM orders AS x ORDER BY x.v DESC, x.g LIMIT 5", "topk"},
	{"SELECT VALUE x FROM orders AS x ORDER BY x.v", "topk"},
	{"SELECT VALUE x.v FROM orders AS x WHERE x.v >= 4", "concat"},
	{"SELECT x.g AS g FROM orders AS x WHERE x.v > 2 LIMIT 3", "concat"},
	{"SELECT DISTINCT x.g AS g FROM orders AS x", "concat"},
	{"SELECT VALUE {'g': x.g, 'd': (SELECT VALUE d.label FROM dims AS d WHERE d.k = x.g)} FROM orders AS x WHERE x.v > 6", "concat"},
	// Gather fallbacks: parameterized, multi-ref, aggregate-ineligible,
	// star, GROUP AS, nested correlated blocks over the sharded name.
	{"SELECT * FROM orders AS x WHERE x.v > 8", "gather"},
	{"SELECT x.g AS g, ARRAY_AGG(x.v) AS vs FROM orders AS x GROUP BY x.g AS g", "gather"},
	{"SELECT x.g AS g, COUNT(DISTINCT x.v) AS c FROM orders AS x GROUP BY x.g AS g", "gather"},
	{"SELECT x.g AS g, g2 AS members FROM orders AS x GROUP BY x.g AS g GROUP AS g2", "gather"},
	{"SELECT VALUE (SELECT VALUE SUM(y.v) FROM orders AS y WHERE y.g = x.g) FROM orders AS x WHERE x.v = 9", "gather"},
	// A correlated subquery in the sort key is fine for topk: the key is
	// computed per row while the row variable is in scope, and the merge
	// sorts on the stored key values.
	{"SELECT VALUE o FROM orders AS o ORDER BY (SELECT VALUE COUNT(*) FROM dims AS d WHERE d.k = o.g) DESC, o.v", "topk"},
	{"SELECT DISTINCT x.g AS g FROM orders AS x ORDER BY g", "gather"},
	// Local: no sharded reference at all.
	{"SELECT VALUE d.label FROM dims AS d ORDER BY d.k", "local"},
}

func TestScatterByteIdentity(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 5} {
		single, co := newIdentityPair(t, shards, nil)
		for _, tc := range identityQueries {
			want, werr := single.Query(tc.query)
			res, gerr := co.Exec(context.Background(), tc.query)
			if (werr != nil) != (gerr != nil) {
				t.Fatalf("shards=%d %q: single err=%v sharded err=%v", shards, tc.query, werr, gerr)
			}
			if werr != nil {
				continue
			}
			if res.Class != tc.class {
				t.Errorf("shards=%d %q: class=%s want %s", shards, tc.query, res.Class, tc.class)
			}
			if got := res.Value.String(); got != want.String() {
				t.Errorf("shards=%d %q:\n got %s\nwant %s\nclass=%s notes=%v",
					shards, tc.query, got, want.String(), res.Class, res.Notes)
			}
			if len(res.MissingShards) != 0 {
				t.Errorf("%q: unexpected missing shards %v", tc.query, res.MissingShards)
			}
		}
	}
}

func TestScatterByteIdentityCompatAndStrict(t *testing.T) {
	for _, opts := range []*sqlpp.Options{
		{Compat: true},
		{StopOnError: true},
	} {
		single, co := newIdentityPair(t, 3, opts)
		for _, tc := range identityQueries {
			want, werr := single.Query(tc.query)
			res, gerr := co.Exec(context.Background(), tc.query)
			if (werr != nil) != (gerr != nil) {
				t.Fatalf("opts=%+v %q: single err=%v sharded err=%v", *opts, tc.query, werr, gerr)
			}
			if werr != nil {
				continue
			}
			if got := res.Value.String(); got != want.String() {
				t.Errorf("opts=%+v %q:\n got %s\nwant %s", *opts, tc.query, got, want.String())
			}
		}
	}
}

func TestScatterParamsGather(t *testing.T) {
	single, co := newIdentityPair(t, 3, nil)
	query := "SELECT VALUE x.v FROM orders AS x WHERE x.g = $g ORDER BY x.v"
	p, err := single.PrepareParams(query, "$g")
	if err != nil {
		t.Fatal(err)
	}
	params := map[string]value.Value{"$g": value.String("a")}
	want, err := p.Exec(params)
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.ExecRequest(context.Background(), ExecRequest{Query: query, Params: params})
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != "gather" {
		t.Fatalf("class = %s, want gather", res.Class)
	}
	if res.Value.String() != want.String() {
		t.Fatalf("got %s want %s", res.Value.String(), want.String())
	}
}

func TestExplainComposesScatterTree(t *testing.T) {
	_, co := newIdentityPair(t, 3, nil)
	res, err := co.ExecRequest(context.Background(), ExecRequest{
		Query:   "SELECT x.g AS g, COUNT(*) AS c FROM orders AS x GROUP BY x.g AS g",
		Explain: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st == nil || st.Op != "scatter-gather" {
		t.Fatalf("stats root = %+v", st)
	}
	if st.Counters["shards"] != 3 {
		t.Fatalf("shards counter = %d", st.Counters["shards"])
	}
	if len(st.Children) != 4 { // 3 shards + merge
		t.Fatalf("children = %d", len(st.Children))
	}
	last := st.Children[len(st.Children)-1]
	if last.Op != "merge" || len(last.Children) == 0 {
		t.Fatalf("merge child = %+v", last)
	}
	for _, sh := range st.Children[:3] {
		if sh.Op != "shard" || len(sh.Children) == 0 {
			t.Fatalf("shard child %+v missing local plan tree", sh)
		}
		if sh.Counters["attempts"] != 1 {
			t.Fatalf("shard %s attempts = %d", sh.Label, sh.Counters["attempts"])
		}
	}
}

// flakyExecutor fails the first fail attempts of each query with a
// transient error, then delegates to a local executor.
type flakyExecutor struct {
	*LocalExecutor
	mu    sync.Mutex
	fail  int
	calls int
	hint  time.Duration
	final bool
}

func (f *flakyExecutor) Exec(ctx context.Context, req Request) (*Response, error) {
	f.mu.Lock()
	f.calls++
	n := f.calls
	f.mu.Unlock()
	if n <= f.fail {
		err := fmt.Errorf("induced failure %d", n)
		if f.final {
			return nil, err
		}
		if f.hint > 0 {
			return nil, TransientHint(err, f.hint)
		}
		return nil, Transient(err)
	}
	return f.LocalExecutor.Exec(ctx, req)
}

// newFlakyCluster builds a 2-shard coordinator whose first shard is
// wrapped by a flaky executor.
func newFlakyCluster(t *testing.T, fail int, final bool, p Policy) (*Coordinator, *flakyExecutor) {
	t.Helper()
	e0 := sqlpp.New(nil)
	e1 := sqlpp.New(nil)
	fl := &flakyExecutor{LocalExecutor: NewLocal("s0", e0), fail: fail, final: final}
	co := NewCoordinator(sqlpp.New(nil), p, fl, NewLocal("s1", e1))
	if err := co.Distribute("xs", mustValue(t, "[1,2,3,4,5,6]"), Spec{}); err != nil {
		t.Fatal(err)
	}
	return co, fl
}

func TestRetriesRecoverTransientFailure(t *testing.T) {
	co, fl := newFlakyCluster(t, 2, false, Policy{MaxAttempts: 3, BaseBackoff: time.Microsecond})
	res, err := co.Exec(context.Background(), "SELECT VALUE SUM(x) FROM xs AS x")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Value.String(); got != "{{21}}" {
		t.Fatalf("got %s", got)
	}
	if fl.calls != 3 {
		t.Fatalf("calls = %d, want 3", fl.calls)
	}
	tele := co.Telemetry()
	if tele[0].Retries != 2 {
		t.Fatalf("telemetry retries = %d", tele[0].Retries)
	}
}

func TestFailFastSurfacesTypedShardError(t *testing.T) {
	co, _ := newFlakyCluster(t, 99, false, Policy{MaxAttempts: 2, BaseBackoff: time.Microsecond})
	_, err := co.Exec(context.Background(), "SELECT VALUE SUM(x) FROM xs AS x")
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *ShardError", err)
	}
	if se.Shard != "s0" || se.Attempts != 2 {
		t.Fatalf("ShardError = %+v", se)
	}
}

func TestFinalErrorNotRetried(t *testing.T) {
	co, fl := newFlakyCluster(t, 99, true, Policy{MaxAttempts: 5, BaseBackoff: time.Microsecond})
	_, err := co.Exec(context.Background(), "SELECT VALUE SUM(x) FROM xs AS x")
	if err == nil {
		t.Fatal("expected error")
	}
	if fl.calls != 1 {
		t.Fatalf("calls = %d, want 1 (final errors must not retry)", fl.calls)
	}
}

func TestPartialPolicyAnnotatesMissingShards(t *testing.T) {
	mode := Partial
	co, _ := newFlakyCluster(t, 99, false, Policy{MaxAttempts: 2, BaseBackoff: time.Microsecond})
	res, err := co.ExecRequest(context.Background(), ExecRequest{
		Query:     "SELECT VALUE SUM(x) FROM xs AS x",
		OnFailure: &mode,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MissingShards) != 1 || res.MissingShards[0] != "s0" {
		t.Fatalf("missing = %v", res.MissingShards)
	}
	// Shard s1 holds the second range chunk [4,5,6]: the partial answer
	// aggregates what survived.
	if got := res.Value.String(); got != "{{15}}" {
		t.Fatalf("partial sum = %s", got)
	}
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "missing_shards: s0") {
			found = true
		}
	}
	if !found {
		t.Fatalf("notes missing annotation: %v", res.Notes)
	}
}

func TestPartialPolicyAllShardsDownStillErrors(t *testing.T) {
	mode := Partial
	e0 := sqlpp.New(nil)
	e1 := sqlpp.New(nil)
	f0 := &flakyExecutor{LocalExecutor: NewLocal("s0", e0), fail: 99}
	f1 := &flakyExecutor{LocalExecutor: NewLocal("s1", e1), fail: 99}
	co := NewCoordinator(sqlpp.New(nil), Policy{MaxAttempts: 2, BaseBackoff: time.Microsecond}, f0, f1)
	if err := co.Distribute("xs", mustValue(t, "[1,2,3]"), Spec{}); err != nil {
		t.Fatal(err)
	}
	_, err := co.ExecRequest(context.Background(), ExecRequest{
		Query:     "SELECT VALUE COUNT(*) FROM xs AS x",
		OnFailure: &mode,
	})
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *ShardError when every shard failed", err)
	}
}

func TestRetryAfterHintRaisesBackoff(t *testing.T) {
	var slept []time.Duration
	p := Policy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}
	p = p.WithClock(time.Now, func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	})
	e0 := sqlpp.New(nil)
	fl := &flakyExecutor{LocalExecutor: NewLocal("s0", e0), fail: 1, hint: 700 * time.Millisecond}
	co := NewCoordinator(sqlpp.New(nil), p, fl)
	if err := co.Distribute("xs", mustValue(t, "[1,2]"), Spec{}); err != nil {
		t.Fatal(err)
	}
	if _, err := co.Exec(context.Background(), "SELECT VALUE COUNT(*) FROM xs AS x"); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] < 700*time.Millisecond {
		t.Fatalf("slept = %v, want >= hint 700ms", slept)
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	p := Policy{
		MaxAttempts:      1,
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Second,
	}.WithClock(func() time.Time { return now }, func(ctx context.Context, d time.Duration) error { return nil })
	_ = clock
	b := &breaker{}
	pf := p.filled()
	if !b.allow(pf) {
		t.Fatal("closed breaker must allow")
	}
	b.onFailure(pf)
	if b.isOpen() {
		t.Fatal("one failure under threshold 2 must not open")
	}
	b.onFailure(pf)
	if !b.isOpen() {
		t.Fatal("threshold reached, breaker must open")
	}
	if b.allow(pf) {
		t.Fatal("open breaker must reject before cooldown")
	}
	now = now.Add(11 * time.Second)
	if !b.allow(pf) {
		t.Fatal("cooldown elapsed, breaker must admit a half-open probe")
	}
	if b.allow(pf) {
		t.Fatal("half-open admits exactly one probe")
	}
	b.onSuccess()
	if b.isOpen() || !b.allow(pf) {
		t.Fatal("probe success must close the breaker")
	}
	if b.openCount() != 1 {
		t.Fatalf("openCount = %d", b.openCount())
	}

	// A failed probe re-opens immediately.
	b.onFailure(pf)
	b.onFailure(pf)
	now = now.Add(11 * time.Second)
	if !b.allow(pf) {
		t.Fatal("expected probe admission")
	}
	b.onFailure(pf)
	if !b.isOpen() {
		t.Fatal("failed probe must re-open")
	}
	if b.openCount() != 3 {
		t.Fatalf("openCount = %d, want 3", b.openCount())
	}
}

func TestBackoffJitterDeterministicAndBounded(t *testing.T) {
	p := Policy{BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second}.filled()
	a := newJitterSource(42)
	b := newJitterSource(42)
	for retry := 1; retry <= 6; retry++ {
		da := a.backoff(p, retry, 0)
		db := b.backoff(p, retry, 0)
		if da != db {
			t.Fatalf("retry %d: %v != %v (same seed must match)", retry, da, db)
		}
		exp := p.BaseBackoff << (retry - 1)
		if exp > p.MaxBackoff || exp <= 0 {
			exp = p.MaxBackoff
		}
		if da < exp/2 || da > exp {
			t.Fatalf("retry %d: backoff %v outside [%v, %v]", retry, da, exp/2, exp)
		}
	}
}

func TestHedgingRacesDuplicateAttempt(t *testing.T) {
	// Shard whose first call stalls until cancelled: the hedge must win.
	e0 := sqlpp.New(nil)
	stall := &stallFirstExecutor{LocalExecutor: NewLocal("s0", e0)}
	p := Policy{HedgeAfter: 5 * time.Millisecond, MaxAttempts: 1}
	co := NewCoordinator(sqlpp.New(nil), p, stall)
	if err := co.Distribute("xs", mustValue(t, "[1,2,3]"), Spec{}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := co.Exec(ctx, "SELECT VALUE COUNT(*) FROM xs AS x")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Value.String(); got != "{{3}}" {
		t.Fatalf("got %s", got)
	}
	if stall.launches.Load() < 2 {
		t.Fatalf("launches = %d, want hedged second attempt", stall.launches.Load())
	}
	if co.Telemetry()[0].Hedges < 1 {
		t.Fatal("telemetry must count the hedge")
	}
}

// stallFirstExecutor blocks its first Exec until the context is
// cancelled; later Execs answer normally.
type stallFirstExecutor struct {
	*LocalExecutor
	launches atomicInt64
}

func (s *stallFirstExecutor) Exec(ctx context.Context, req Request) (*Response, error) {
	if s.launches.Add(1) == 1 {
		<-ctx.Done()
		return nil, Transient(ctx.Err())
	}
	return s.LocalExecutor.Exec(ctx, req)
}

// atomicInt64 avoids importing sync/atomic at every use site.
type atomicInt64 struct {
	mu sync.Mutex
	n  int64
}

func (a *atomicInt64) Add(d int64) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n += d
	return a.n
}

func (a *atomicInt64) Load() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}

func TestDeadlineNeverHangs(t *testing.T) {
	// Every shard stalls forever: the query must come back within the
	// caller's deadline, as a typed error, not hang.
	e0 := sqlpp.New(nil)
	stall := &stallAlwaysExecutor{LocalExecutor: NewLocal("s0", e0)}
	co := NewCoordinator(sqlpp.New(nil), Policy{MaxAttempts: 2, BaseBackoff: time.Millisecond}, stall)
	if err := co.Distribute("xs", mustValue(t, "[1]"), Spec{}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := co.Exec(ctx, "SELECT VALUE COUNT(*) FROM xs AS x")
	if err == nil {
		t.Fatal("expected deadline error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("took %v; scatter must respect the deadline", elapsed)
	}
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *ShardError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded cause", err)
	}
}

type stallAlwaysExecutor struct {
	*LocalExecutor
}

func (s *stallAlwaysExecutor) Exec(ctx context.Context, req Request) (*Response, error) {
	<-ctx.Done()
	return nil, Transient(fmt.Errorf("stalled: %w", ctx.Err()))
}

func TestEpochInvalidatesScatterPlans(t *testing.T) {
	co := NewLocalCluster(2, nil, Policy{})
	if err := co.Broadcast("xs", mustValue(t, "[1,2,3]")); err != nil {
		t.Fatal(err)
	}
	q := "SELECT VALUE SUM(x) FROM xs AS x"
	res, err := co.Exec(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != "local" {
		t.Fatalf("class = %s, want local before distribution", res.Class)
	}
	// Re-distribute the same name as a sharded collection: the cached
	// local classification must not survive the epoch bump.
	if err := co.Distribute("xs", mustValue(t, "[1,2,3,4]"), Spec{}); err != nil {
		t.Fatal(err)
	}
	res, err = co.Exec(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != "group" {
		t.Fatalf("class = %s, want group after distribution", res.Class)
	}
	if got := res.Value.String(); got != "{{10}}" {
		t.Fatalf("got %s", got)
	}
}

func TestParseKindAndFailMode(t *testing.T) {
	if k, err := ParseKind("hash"); err != nil || k != Hash {
		t.Fatalf("ParseKind(hash) = %v, %v", k, err)
	}
	if _, err := ParseKind("mod"); err == nil {
		t.Fatal("ParseKind(mod) must fail")
	}
	if m, ok := ParseFailMode("partial"); !ok || m != Partial {
		t.Fatalf("ParseFailMode(partial) = %v, %v", m, ok)
	}
	if _, ok := ParseFailMode("never"); ok {
		t.Fatal("ParseFailMode(never) must fail")
	}
}
