package shard

import (
	"strconv"
	"strings"

	"sqlpp/internal/ast"
	"sqlpp/internal/parser"
	"sqlpp/internal/value"
)

// The splitter classifies a query against the sharded-collection
// registry and, when it can prove a merge decomposition correct,
// generates the per-shard and merge query texts. Everything it cannot
// prove falls back to class gather — ship the sharded collections back
// whole and run the original query unchanged — so sharding never
// changes results, only where the work happens.
//
// Classes:
//
//	local   no sharded collection is referenced; run on the coordinator.
//	group   GROUP BY (or implicit grouping) with COUNT/SUM/AVG/MIN/MAX:
//	        per-shard local aggregation, global merge by COLL_*
//	        decomposition over the partial rows.
//	topk    ORDER BY with literal LIMIT/OFFSET: per-shard top-(l+o)
//	        carrying the sort keys, coordinator merge re-sort.
//	concat  plain scatter; DISTINCT de-duplicates again at the merge,
//	        literal LIMIT+OFFSET prunes locally to l+o rows.
//	gather  the always-correct fallback.
//
// The generated queries communicate through reserved attribute slots
// (__k<i> group/sort keys, __a<j>/__n<j> aggregate partials, __v rows)
// in a partials collection the coordinator registers as __partials.
const partialsName = "__partials"

// scatterPlan is a classified, split query, cached per (query, epoch).
type scatterPlan struct {
	class string // "local" | "group" | "topk" | "concat" | "gather"
	// shardQuery runs on every shard (classes group/topk/concat).
	shardQuery string
	// mergeQuery runs on the coordinator's merge engine over __partials
	// (classes group/topk/concat).
	mergeQuery string
	// gather lists the sharded collections to pull back whole (class
	// gather); the original query then runs against the reassembled
	// catalog.
	gather []string
	// sharded names the collection driving a scatter (annotations).
	sharded string
}

// classify splits query against the sharded-name registry. Parse errors
// return class local so the engine reports them with its own message.
func classify(query string, specs map[string]Spec) *scatterPlan {
	tree, err := parser.Parse(query)
	if err != nil {
		return &scatterPlan{class: "local"}
	}
	refs := shardedRefs(tree, specs)
	if len(refs) == 0 {
		return &scatterPlan{class: "local"}
	}
	gather := &scatterPlan{class: "gather", gather: refs}
	sfw, ok := tree.(*ast.SFW)
	if !ok {
		return gather
	}
	if len(refs) > 1 {
		return gather
	}
	name := refs[0]
	if countRefs(tree, name) != 1 || !headIsSharded(sfw, name) || aliasShadows(tree, name) {
		return gather
	}
	if hasParams(tree) || len(sfw.Windows) > 0 || hasWindowExprs(tree) {
		return gather
	}
	if p := splitGroup(sfw, name); p != nil {
		return p
	}
	if p := splitTopK(sfw, name); p != nil {
		return p
	}
	if p := splitConcat(sfw, name); p != nil {
		return p
	}
	return gather
}

// shardedRefs lists the sharded collection names referenced anywhere in
// the tree, by matching dotted identifier chains textually (an
// over-approximation: shadowed names still count, and push the query to
// the correct-by-construction gather class).
// governor:bounded by the query text (plan-time AST walk, no data rows)
func shardedRefs(e ast.Expr, specs map[string]Spec) []string {
	seen := map[string]bool{}
	var out []string
	ast.Inspect(e, func(n ast.Expr) bool {
		if name, ok := chainName(n); ok {
			for cand := name; cand != ""; {
				if _, sharded := specs[cand]; sharded && !seen[cand] {
					seen[cand] = true
					out = append(out, cand)
				}
				i := strings.LastIndex(cand, ".")
				if i < 0 {
					break
				}
				cand = cand[:i]
			}
		}
		return true
	})
	return out
}

// chainName flattens a VarRef / FieldAccess chain to its dotted name.
func chainName(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.VarRef:
		return x.Name, true
	case *ast.NamedRef:
		return x.Name, true
	case *ast.FieldAccess:
		base, ok := chainName(x.Base)
		if !ok {
			return "", false
		}
		return base + "." + x.Name, true
	}
	return "", false
}

// countRefs counts expression nodes whose chain is exactly name.
func countRefs(e ast.Expr, name string) int {
	n := 0
	ast.Inspect(e, func(x ast.Expr) bool {
		if c, ok := chainName(x); ok && c == name {
			n++
			// A matched chain's prefix sub-chains must not double-count.
			return false
		}
		return true
	})
	return n
}

// headIsSharded reports whether the query's leftmost FROM leaf ranges
// over name, with every join on the spine tolerating a partitioned
// left side (inner/left/cross: each output row is driven by exactly
// one left row, so partitioning the left tiles the join).
func headIsSharded(q *ast.SFW, name string) bool {
	if len(q.From) == 0 {
		return false
	}
	item := q.From[0]
	for {
		j, ok := item.(*ast.FromJoin)
		if !ok {
			break
		}
		if j.Kind != ast.JoinInner && j.Kind != ast.JoinLeft && j.Kind != ast.JoinCross {
			return false
		}
		item = j.Left
	}
	fe, ok := item.(*ast.FromExpr)
	if !ok {
		return false
	}
	if fe.AtVar != "" {
		// AT ordinals restart at zero on every shard; only the gather
		// fallback sees global positions.
		return false
	}
	c, ok := chainName(fe.Expr)
	return ok && c == name
}

// hasWindowExprs reports an inline window-function application (fn OVER
// (...)) anywhere in the tree; window frames span the whole collection,
// so windowed queries take the gather path.
func hasWindowExprs(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Expr) bool {
		if _, ok := n.(*ast.Window); ok {
			found = true
		}
		return !found
	})
	return found
}

// aliasShadows reports whether any binding introduced anywhere in the
// query shares the sharded name's first segment — resolution could then
// differ between scopes, so the splitter defers to gather.
func aliasShadows(e ast.Expr, name string) bool {
	head, _, _ := strings.Cut(name, ".")
	found := false
	eachBinding(e, func(b string) {
		if b == head {
			found = true
		}
	})
	return found
}

// eachBinding visits every variable binder in the tree.
func eachBinding(e ast.Expr, fn func(string)) {
	ast.Inspect(e, func(n ast.Expr) bool {
		switch x := n.(type) {
		case *ast.SFW:
			for _, f := range x.From {
				eachFromBinding(f, fn)
			}
			for _, l := range x.Lets {
				fn(l.Name)
			}
			if x.GroupBy != nil {
				for _, k := range x.GroupBy.Keys {
					fn(k.Alias)
				}
				fn(x.GroupBy.GroupAs)
			}
		case *ast.PivotQuery:
			for _, f := range x.From {
				eachFromBinding(f, fn)
			}
			for _, l := range x.Lets {
				fn(l.Name)
			}
		case *ast.With:
			for _, b := range x.Bindings {
				fn(b.Name)
			}
		}
		return true
	})
}

func eachFromBinding(f ast.FromItem, fn func(string)) {
	switch x := f.(type) {
	case *ast.FromExpr:
		fn(x.As)
		if x.AtVar != "" {
			fn(x.AtVar)
		}
	case *ast.FromUnpivot:
		fn(x.ValueVar)
		fn(x.NameVar)
	case *ast.FromJoin:
		eachFromBinding(x.Left, fn)
		eachFromBinding(x.Right, fn)
	}
}

// hasParams reports whether the query references a parameter-style
// identifier ($name); parameterized queries take the gather path, which
// can bind them.
func hasParams(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Expr) bool {
		if v, ok := n.(*ast.VarRef); ok && strings.HasPrefix(v.Name, "$") {
			found = true
		}
		return true
	})
	return found
}

// litInt extracts a non-negative integer literal; LIMIT/OFFSET splits
// require one (an expression limit could differ per shard).
func litInt(e ast.Expr) (int64, bool) {
	l, ok := e.(*ast.Literal)
	if !ok {
		return 0, false
	}
	n, ok := l.Val.(value.Int)
	if !ok || int64(n) < 0 {
		return 0, false
	}
	return int64(n), true
}

// intLit builds an integer literal node.
func intLit(n int64) ast.Expr { return &ast.Literal{Val: value.Int(n)} }

// varRef builds a variable reference node.
func varRef(name string) ast.Expr { return &ast.VarRef{Name: name} }

// fieldOf builds base.name navigation.
func fieldOf(base ast.Expr, name string) ast.Expr {
	return &ast.FieldAccess{Base: base, Name: name}
}

// strLit builds a string literal (tuple constructor field names).
func strLit(s string) ast.Expr { return &ast.Literal{Val: value.String(s)} }

// ---------------------------------------------------------------------
// Class topk: ORDER BY [literal LIMIT/OFFSET], no grouping.

// splitTopK handles ORDER BY with an optional literal LIMIT/OFFSET.
// Each shard evaluates the block with its SELECT replaced by a tuple
// carrying the output row (__v) and every sort key (__k<i>), sorted and
// pruned to limit+offset rows; the merge re-sorts the concatenated
// partials on the stored keys and applies the original LIMIT/OFFSET.
// Local sorts emit rows in order and the merge sort is stable over
// shard-concatenation order, so ties resolve exactly as a single node
// would under range partitioning.
// governor:bounded by the query text (plan-time rewrite; row buffers live in the engines)
func splitTopK(q *ast.SFW, name string) *scatterPlan {
	if len(q.OrderBy) == 0 || q.GroupBy != nil || q.Having != nil {
		return nil
	}
	if q.Select.Distinct || q.Select.Star || hasAggregates(q) {
		return nil
	}
	vExpr, ok := selectValueExpr(q.Select)
	if !ok {
		return nil
	}
	limit, offset := int64(-1), int64(0)
	if q.Limit != nil {
		l, ok := litInt(q.Limit)
		if !ok {
			return nil
		}
		limit = l
	}
	if q.Offset != nil {
		o, ok := litInt(q.Offset)
		if !ok {
			return nil
		}
		offset = o
	}

	// Sort keys may reference SELECT-item output aliases; the local
	// query's SELECT is replaced, so inline them (unless a block variable
	// shadows the name, in which case the engine resolved the variable
	// and the clone still does).
	blockVars := map[string]bool{}
	for _, f := range q.From {
		eachFromBinding(f, func(b string) { blockVars[b] = true })
	}
	for _, l := range q.Lets {
		blockVars[l.Name] = true
	}
	aliases := map[string]ast.Expr{}
	for _, it := range q.Select.Items {
		if it.Alias != "" && it.Expr != nil && !blockVars[it.Alias] {
			aliases[it.Alias] = it.Expr
		}
	}
	sub := &aliasSubst{aliases: aliases}

	local := ast.CloneExpr(q).(*ast.SFW)
	fields := []ast.TupleField{{Name: strLit("__v"), Value: vExpr}}
	mergeOrder := make([]ast.OrderItem, len(q.OrderBy))
	for i, o := range q.OrderBy {
		slot := "__k" + strconv.Itoa(i)
		fields = append(fields, ast.TupleField{Name: strLit(slot), Value: sub.apply(ast.CloneExpr(o.Expr))})
		mergeOrder[i] = ast.OrderItem{
			Expr:       fieldOf(varRef("__r"), slot),
			Desc:       o.Desc,
			NullsFirst: o.NullsFirst,
		}
	}
	if sub.bad {
		return nil
	}
	local.Select = ast.SelectClause{Value: &ast.TupleCtor{Fields: fields}}
	local.Limit, local.Offset = nil, nil
	if limit >= 0 {
		local.Limit = intLit(limit + offset)
	}

	merge := &ast.SFW{
		Select:  ast.SelectClause{Value: fieldOf(varRef("__r"), "__v")},
		From:    []ast.FromItem{&ast.FromExpr{Expr: varRef(partialsName), As: "__r"}},
		OrderBy: mergeOrder,
	}
	if limit >= 0 {
		merge.Limit = intLit(limit)
	}
	if offset > 0 {
		merge.Offset = intLit(offset)
	}
	return &scatterPlan{
		class:      "topk",
		shardQuery: ast.Format(local),
		mergeQuery: ast.Format(merge),
		sharded:    name,
	}
}

// selectValueExpr builds the SELECT VALUE form of a select clause:
// VALUE passes through; an item list becomes the tuple constructor the
// Core lowering would build (parser-filled aliases, "_<i>" for the
// rest). Star and expr.* items need scope information and defer to
// gather.
func selectValueExpr(sel ast.SelectClause) (ast.Expr, bool) {
	if sel.Value != nil {
		return ast.CloneExpr(sel.Value), true
	}
	if sel.Star || len(sel.Items) == 0 {
		return nil, false
	}
	fields := make([]ast.TupleField, len(sel.Items))
	for i, it := range sel.Items {
		if it.StarOf != nil || it.Expr == nil {
			return nil, false
		}
		name := it.Alias
		if name == "" {
			name = "_" + strconv.Itoa(i+1)
		}
		fields[i] = ast.TupleField{Name: strLit(name), Value: ast.CloneExpr(it.Expr)}
	}
	return &ast.TupleCtor{Fields: fields}, true
}

// hasAggregates reports whether the block's post-group clauses apply a
// SQL aggregate at this block's level (nested query blocks own their
// aggregates and are not descended into).
func hasAggregates(q *ast.SFW) bool {
	found := false
	eachTopExpr(q, func(e ast.Expr) {
		walkShallow(e, func(n ast.Expr) bool {
			if c, ok := n.(*ast.Call); ok && isMergeableAgg(c.Name) {
				found = true
			}
			return true
		})
	})
	return found
}

// eachTopExpr visits the select/having/order expressions of a block —
// the clauses the group transform applies to.
func eachTopExpr(q *ast.SFW, fn func(ast.Expr)) {
	if q.Select.Value != nil {
		fn(q.Select.Value)
	}
	for _, it := range q.Select.Items {
		if it.Expr != nil {
			fn(it.Expr)
		}
	}
	if q.Having != nil {
		fn(q.Having)
	}
	for _, o := range q.OrderBy {
		fn(o.Expr)
	}
}

// walkShallow walks e without descending into nested query blocks,
// mirroring the rewriter's group transform.
func walkShallow(e ast.Expr, fn func(ast.Expr) bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Expr) bool {
		switch n.(type) {
		case *ast.SFW, *ast.PivotQuery, *ast.SetOp, *ast.With:
			// The root may itself be a block only when e is one; the
			// callers never pass blocks, so any block here is nested.
			return false
		}
		return fn(n)
	})
}

// isMergeableAgg reports the SQL aggregates the group split can
// decompose. EVERY/ANY/SOME/ARRAY_AGG exist in the engine but are not
// split (ARRAY_AGG order and the quantifiers' NULL logic are handled by
// the gather fallback).
func isMergeableAgg(name string) bool {
	switch strings.ToUpper(name) {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// isAnyAgg reports any SQL aggregate name (including the non-mergeable
// ones, which force the gather fallback when present).
func isAnyAgg(name string) bool {
	switch strings.ToUpper(name) {
	case "COUNT", "SUM", "AVG", "MIN", "MAX", "EVERY", "ANY", "SOME", "ARRAY_AGG":
		return true
	}
	return false
}

// ---------------------------------------------------------------------
// Class concat: no grouping, no ordering.

// splitConcat handles plain scatters: each shard runs the block
// (DISTINCT and LIMIT prune locally where provably safe) and the merge
// concatenates in shard order, re-applying DISTINCT and the original
// LIMIT/OFFSET window.
func splitConcat(q *ast.SFW, name string) *scatterPlan {
	if q.GroupBy != nil || q.Having != nil || len(q.OrderBy) > 0 || hasAggregates(q) {
		return nil
	}
	if q.Select.Star || selectHasStarOf(q.Select) {
		return nil
	}
	limit, offset := int64(-1), int64(0)
	if q.Limit != nil {
		l, ok := litInt(q.Limit)
		if !ok {
			return nil
		}
		limit = l
	}
	if q.Offset != nil {
		o, ok := litInt(q.Offset)
		if !ok {
			return nil
		}
		offset = o
	}

	local := ast.CloneExpr(q).(*ast.SFW)
	local.Limit, local.Offset = nil, nil
	if limit >= 0 {
		// A row outside a shard's first limit+offset (distinct) rows has
		// at least that many rows ahead of it globally too, so local
		// pruning to limit+offset never cuts a row the window needs.
		local.Limit = intLit(limit + offset)
	}

	merge := &ast.SFW{
		Select: ast.SelectClause{Distinct: q.Select.Distinct, Value: varRef("__r")},
		From:   []ast.FromItem{&ast.FromExpr{Expr: varRef(partialsName), As: "__r"}},
	}
	if limit >= 0 {
		merge.Limit = intLit(limit)
	}
	if offset > 0 {
		merge.Offset = intLit(offset)
	}
	return &scatterPlan{
		class:      "concat",
		shardQuery: ast.Format(local),
		mergeQuery: ast.Format(merge),
		sharded:    name,
	}
}

// selectHasStarOf reports an expr.* item, which needs scope information
// the splitter does not model.
func selectHasStarOf(sel ast.SelectClause) bool {
	for _, it := range sel.Items {
		if it.StarOf != nil {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Class group: GROUP BY / implicit grouping with mergeable aggregates.

// aggSlot is one distinct aggregate call of the block, keyed by its
// formatted text so repeated occurrences share a slot.
type aggSlot struct {
	call *ast.Call // the original call (cloned for the local query)
	fn   string    // upper-cased name
	slot int
}

// splitGroup handles grouped aggregation. The per-shard query computes
// each group's keys and partial aggregates:
//
//	COUNT(x) → __a<j> = COUNT(x)            merge: SUM(__a<j>)
//	SUM(x)   → __a<j> = SUM(x)              merge: SUM(__a<j>), MISSING if any partial is
//	AVG(x)   → __a<j> = SUM(x), __n<j> = COUNT(x)
//	                                        merge: (1.0*SUM(__a<j>))/SUM(__n<j>)
//	MIN/MAX  → __a<j> = MIN/MAX(x)          merge: MIN/MAX(__a<j>)
//
// The merge query groups the partials by the stored keys and rebuilds
// the original SELECT/HAVING/ORDER BY with key references and aggregate
// calls substituted by the merged forms. A per-shard aggregate that
// faulted under permissive typing yields MISSING, which the tuple
// constructor drops — the merge detects the absent slot and propagates
// MISSING, exactly as a single node's faulted aggregate would.
//
// The AVG merge multiplies by 1.0 before dividing so integer partial
// sums divide in float like COLL_AVG does; integer totals stay exact
// (IEEE doubles are exact through 2^53, and partial SUMs are exact
// int64 adds). Float SUM/AVG re-associate across shards — see the
// package comment.
// governor:bounded by the query text (plan-time rewrite; partial folds charge shard-gather at merge)
func splitGroup(q *ast.SFW, name string) *scatterPlan {
	hasGroup := q.GroupBy != nil
	if hasGroup && (q.GroupBy.GroupAs != "" || len(q.GroupBy.Keys) == 0) {
		return nil
	}
	if !hasGroup && (q.Having != nil || !hasAggregates(q)) {
		return nil
	}
	if q.Select.Star || selectHasStarOf(q.Select) {
		return nil
	}
	limit, offset := int64(-1), int64(0)
	if q.Limit != nil {
		l, ok := litInt(q.Limit)
		if !ok {
			return nil
		}
		limit = l
	}
	if q.Offset != nil {
		o, ok := litInt(q.Offset)
		if !ok {
			return nil
		}
		offset = o
	}

	// Collect the aggregate calls; any unsupported or DISTINCT aggregate
	// defers to gather.
	slots := map[string]*aggSlot{}
	var order []*aggSlot
	bad := false
	eachTopExpr(q, func(e ast.Expr) {
		walkShallow(e, func(n ast.Expr) bool {
			c, ok := n.(*ast.Call)
			if !ok {
				return true
			}
			if !isAnyAgg(c.Name) {
				return true
			}
			if !isMergeableAgg(c.Name) || c.Distinct {
				bad = true
				return false
			}
			key := ast.Format(c)
			if _, dup := slots[key]; !dup {
				s := &aggSlot{call: c, fn: strings.ToUpper(c.Name), slot: len(order)}
				slots[key] = s
				order = append(order, s)
			}
			// Do not descend into the aggregate's argument: nested blocks
			// in there run locally, and nested aggregates are invalid
			// anyway (the engine rejects them).
			return false
		})
	})
	if bad {
		return nil
	}

	// Key substitution map: formatted key text and its (explicit or
	// SQL-implicit) alias both map to the merge-side key slot.
	var keys []ast.GroupKey
	if hasGroup {
		keys = q.GroupBy.Keys
	}
	keyText := map[string]int{}
	blockVars := map[string]bool{}
	for _, f := range q.From {
		eachFromBinding(f, func(b string) { blockVars[b] = true })
	}
	for _, l := range q.Lets {
		blockVars[l.Name] = true
	}
	for i, k := range keys {
		keyText[ast.Format(k.Expr)] = i
		alias := k.Alias
		if alias == "" {
			alias = implicitKeyAlias(k.Expr)
		}
		if alias != "" && !blockVars[alias] {
			keyText[alias] = i
		}
	}

	// Local query: group per shard, emitting key and partial slots.
	local := ast.CloneExpr(q).(*ast.SFW)
	local.Having = nil
	local.OrderBy = nil
	local.Limit, local.Offset = nil, nil
	local.Select = ast.SelectClause{}
	var fields []ast.TupleField
	for i, k := range keys {
		fields = append(fields, ast.TupleField{Name: strLit("__k" + strconv.Itoa(i)), Value: ast.CloneExpr(k.Expr)})
	}
	needFaultCheck := false
	for _, s := range order {
		j := strconv.Itoa(s.slot)
		arg := func() *ast.Call {
			c := ast.CloneExpr(s.call).(*ast.Call)
			return c
		}
		switch s.fn {
		case "COUNT", "MIN", "MAX":
			fields = append(fields, ast.TupleField{Name: strLit("__a" + j), Value: arg()})
		case "SUM":
			fields = append(fields, ast.TupleField{Name: strLit("__a" + j), Value: arg()})
			needFaultCheck = true
		case "AVG":
			sum := arg()
			sum.Name = "SUM"
			cnt := arg()
			cnt.Name = "COUNT"
			fields = append(fields,
				ast.TupleField{Name: strLit("__a" + j), Value: sum},
				ast.TupleField{Name: strLit("__n" + j), Value: cnt})
			needFaultCheck = true
		}
	}
	local.Select.Value = &ast.TupleCtor{Fields: fields}
	if hasGroup {
		local.GroupBy.GroupAs = ""
	}

	// Merge query: re-group the partials by the stored keys, substitute
	// key references and aggregate calls in the reconstructed clauses.
	merge := &ast.SFW{
		From: []ast.FromItem{&ast.FromExpr{Expr: varRef(partialsName), As: "__r"}},
	}
	groupAsRef := func() ast.Expr { return varRef("__g") }
	faultedSrc := groupAsRef
	partialPath := func(slot string) ast.Expr {
		// Inside the fault-check subquery: group-as elements are tuples
		// of the merge block's bindings, so the partial row is gi.__r.
		return fieldOf(fieldOf(varRef("__gi"), "__r"), slot)
	}
	if hasGroup {
		mkeys := make([]ast.GroupKey, len(keys))
		for i := range keys {
			mkeys[i] = ast.GroupKey{
				Expr:  fieldOf(varRef("__r"), "__k"+strconv.Itoa(i)),
				Alias: "__gk" + strconv.Itoa(i),
			}
		}
		merge.GroupBy = &ast.GroupBy{Keys: mkeys}
		if needFaultCheck {
			merge.GroupBy.GroupAs = "__g"
		}
	} else if needFaultCheck {
		// Implicit grouping merges the whole partials collection, so the
		// fault check scans __partials directly.
		faultedSrc = func() ast.Expr { return varRef(partialsName) }
		partialPath = func(slot string) ast.Expr { return fieldOf(varRef("__gi"), slot) }
	}

	sub := &groupMergeSubst{
		keyText: keyText,
		slots:   slots,
		hasKeys: hasGroup,
		faulted: func(slot string) ast.Expr {
			// EXISTS(SELECT VALUE 1 FROM <group> AS __gi WHERE __gi…__a<j>
			// IS MISSING): true iff some shard's partial aggregate
			// faulted, in which case the merged aggregate is MISSING too.
			return &ast.Exists{Operand: &ast.SFW{
				Select: ast.SelectClause{Value: intLit(1)},
				From:   []ast.FromItem{&ast.FromExpr{Expr: faultedSrc(), As: "__gi"}},
				Where:  &ast.Is{Target: partialPath(slot), What: "MISSING"},
			}}
		},
	}

	bad = false
	reb := func(e ast.Expr) ast.Expr {
		out := sub.apply(ast.CloneExpr(e))
		if sub.bad {
			bad = true
		}
		return out
	}
	if q.Select.Value != nil {
		merge.Select = ast.SelectClause{Distinct: q.Select.Distinct, Value: reb(q.Select.Value)}
	} else {
		items := make([]ast.SelectItem, len(q.Select.Items))
		for i, it := range q.Select.Items {
			// The output attribute must keep the original item's name
			// (parser-filled implicit alias, or positional), so make it
			// explicit: the substitution may have renamed the expression.
			alias := it.Alias
			if alias == "" {
				alias = "_" + strconv.Itoa(i+1)
			}
			items[i] = ast.SelectItem{Expr: reb(it.Expr), Alias: alias, HasAlias: true}
		}
		merge.Select = ast.SelectClause{Distinct: q.Select.Distinct, Items: items}
	}
	if q.Having != nil {
		merge.Having = reb(q.Having)
	}
	for _, o := range q.OrderBy {
		merge.OrderBy = append(merge.OrderBy, ast.OrderItem{
			Expr:       reb(o.Expr),
			Desc:       o.Desc,
			NullsFirst: o.NullsFirst,
		})
	}
	if limit >= 0 {
		merge.Limit = intLit(limit)
	}
	if offset > 0 {
		merge.Offset = intLit(offset)
	}
	if bad {
		return nil
	}
	// Anything left referencing a pre-group binding cannot be computed
	// from the partials; the single-node engine would reject it too, and
	// the gather fallback reproduces that rejection verbatim.
	if referencesAny(merge.Select, merge.Having, merge.OrderBy, blockVars) {
		return nil
	}
	return &scatterPlan{
		class:      "group",
		shardQuery: ast.Format(local),
		mergeQuery: ast.Format(merge),
		sharded:    name,
	}
}

// implicitKeyAlias mirrors the rewriter's rule for unaliased group
// keys.
func implicitKeyAlias(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.VarRef:
		return x.Name
	case *ast.FieldAccess:
		return x.Name
	}
	return ""
}

// groupMergeSubst rewrites a post-group expression for the merge side:
// group-key occurrences (by formatted text or alias) become key-slot
// references, mergeable aggregate calls become their merged forms.
type groupMergeSubst struct {
	keyText map[string]int
	slots   map[string]*aggSlot
	hasKeys bool
	faulted func(slot string) ast.Expr
	bad     bool
}

func (s *groupMergeSubst) keyRef(i int) ast.Expr {
	return varRef("__gk" + strconv.Itoa(i))
}

// mergedAgg builds the merge-side replacement of one aggregate slot.
func (s *groupMergeSubst) mergedAgg(a *aggSlot) ast.Expr {
	j := strconv.Itoa(a.slot)
	part := func(prefix string) ast.Expr {
		return fieldOf(varRef("__r"), prefix+j)
	}
	aggOver := func(fn string, arg ast.Expr) ast.Expr {
		return &ast.Call{Name: fn, Args: []ast.Expr{arg}}
	}
	switch a.fn {
	case "COUNT":
		return aggOver("SUM", part("__a"))
	case "MIN":
		return aggOver("MIN", part("__a"))
	case "MAX":
		return aggOver("MAX", part("__a"))
	case "SUM":
		return s.faultGuard(j, aggOver("SUM", part("__a")))
	case "AVG":
		// (1.0 * SUM(__a)) / SUM(__n): float division like COLL_AVG, and
		// absent propagation gives NULL for all-absent groups before the
		// zero divisor could matter.
		num := &ast.Binary{Op: "*", L: &ast.Literal{Val: value.Float(1)}, R: aggOver("SUM", part("__a"))}
		div := &ast.Binary{Op: "/", L: num, R: aggOver("SUM", part("__n"))}
		return s.faultGuard(j, div)
	}
	s.bad = true
	return varRef("__bad")
}

// faultGuard wraps a merged SUM/AVG: if any shard's partial faulted to
// MISSING, the merged aggregate is MISSING.
func (s *groupMergeSubst) faultGuard(slot string, merged ast.Expr) ast.Expr {
	return &ast.Case{
		Whens: []ast.When{{
			Cond:   s.faulted("__a" + slot),
			Result: &ast.Literal{Val: value.Missing},
		}},
		Else: merged,
	}
}

// apply substitutes in place over a cloned expression.
func (s *groupMergeSubst) apply(e ast.Expr) ast.Expr {
	if e == nil {
		return nil
	}
	if s.hasKeys {
		if i, ok := s.keyText[ast.Format(e)]; ok {
			return s.keyRef(i)
		}
	}
	if c, ok := e.(*ast.Call); ok && isAnyAgg(c.Name) {
		if a, ok := s.slots[ast.Format(c)]; ok {
			return s.mergedAgg(a)
		}
		s.bad = true
		return e
	}
	switch e.(type) {
	case *ast.SFW, *ast.PivotQuery, *ast.SetOp, *ast.With:
		// Nested blocks would need correlation analysis; flag and let the
		// caller fall back.
		s.bad = true
		return e
	}
	rewriteChildren(e, s.apply)
	return e
}

// rewriteChildren applies f to each direct child expression of a
// non-block node, in place. Callers handle query blocks explicitly
// before calling.
func rewriteChildren(e ast.Expr, f func(ast.Expr) ast.Expr) {
	switch x := e.(type) {
	case *ast.FieldAccess:
		x.Base = f(x.Base)
	case *ast.IndexAccess:
		x.Base = f(x.Base)
		x.Index = f(x.Index)
	case *ast.Unary:
		x.Operand = f(x.Operand)
	case *ast.Binary:
		x.L = f(x.L)
		x.R = f(x.R)
	case *ast.Like:
		x.Target = f(x.Target)
		x.Pattern = f(x.Pattern)
		if x.Escape != nil {
			x.Escape = f(x.Escape)
		}
	case *ast.Between:
		x.Target = f(x.Target)
		x.Lo = f(x.Lo)
		x.Hi = f(x.Hi)
	case *ast.In:
		x.Target = f(x.Target)
		for i := range x.List {
			x.List[i] = f(x.List[i])
		}
		if x.Set != nil {
			x.Set = f(x.Set)
		}
	case *ast.Is:
		x.Target = f(x.Target)
	case *ast.Quantified:
		x.Target = f(x.Target)
		x.Set = f(x.Set)
	case *ast.Case:
		if x.Operand != nil {
			x.Operand = f(x.Operand)
		}
		for i := range x.Whens {
			x.Whens[i].Cond = f(x.Whens[i].Cond)
			x.Whens[i].Result = f(x.Whens[i].Result)
		}
		if x.Else != nil {
			x.Else = f(x.Else)
		}
	case *ast.Call:
		for i := range x.Args {
			x.Args[i] = f(x.Args[i])
		}
	case *ast.TupleCtor:
		for i := range x.Fields {
			x.Fields[i].Name = f(x.Fields[i].Name)
			x.Fields[i].Value = f(x.Fields[i].Value)
		}
	case *ast.ArrayCtor:
		for i := range x.Elems {
			x.Elems[i] = f(x.Elems[i])
		}
	case *ast.BagCtor:
		for i := range x.Elems {
			x.Elems[i] = f(x.Elems[i])
		}
	case *ast.Exists:
		x.Operand = f(x.Operand)
	}
}

// aliasSubst replaces references to SELECT-item aliases with the item's
// expression — the topk local query replaces the SELECT clause, so sort
// keys written against output aliases must be inlined. An alias
// reference inside a nested query block cannot be inlined safely and
// flags bad (→ gather fallback).
type aliasSubst struct {
	aliases map[string]ast.Expr
	bad     bool
}

func (s *aliasSubst) apply(e ast.Expr) ast.Expr {
	if e == nil {
		return nil
	}
	if v, ok := e.(*ast.VarRef); ok {
		if repl, hit := s.aliases[v.Name]; hit {
			return ast.CloneExpr(repl)
		}
		return e
	}
	switch e.(type) {
	case *ast.SFW, *ast.PivotQuery, *ast.SetOp, *ast.With:
		ast.Inspect(e, func(n ast.Expr) bool {
			if v, ok := n.(*ast.VarRef); ok {
				if _, hit := s.aliases[v.Name]; hit {
					s.bad = true
				}
			}
			return !s.bad
		})
		return e
	}
	rewriteChildren(e, s.apply)
	return e
}

// referencesAny reports whether any rebuilt merge clause still
// references a pre-group binding — such an expression cannot be
// evaluated from the partials.
func referencesAny(sel ast.SelectClause, having ast.Expr, order []ast.OrderItem, vars map[string]bool) bool {
	found := false
	check := func(e ast.Expr) {
		if e == nil || found {
			return
		}
		ast.Inspect(e, func(n ast.Expr) bool {
			if v, ok := n.(*ast.VarRef); ok && vars[v.Name] {
				found = true
			}
			return !found
		})
	}
	if sel.Value != nil {
		check(sel.Value)
	}
	for _, it := range sel.Items {
		check(it.Expr)
	}
	check(having)
	for _, o := range order {
		check(o.Expr)
	}
	return found
}
