package sion

import (
	"testing"

	"sqlpp/internal/value"
)

const benchDoc = `{{
  {'id': 3, 'name': 'Bob Smith', 'title': null,
   'projects': ['Serverless Querying', 'OLAP Security', 'OLTP Security'],
   'address': {'city': 'Irvine', 'zip': 92697},
   'scores': [1.5, 2.25, -3, 4e2]},
  {'id': 4, 'name': 'Susan Smith', 'title': 'Manager', 'projects': []},
  {'id': 6, 'name': 'Jane Smith', 'title': 'Engineer',
   'projects': ['OLAP Security'], 'tags': <<'a', 'b'>>}
}}`

func BenchmarkParse(b *testing.B) {
	b.SetBytes(int64(len(benchDoc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchDoc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRender(b *testing.B) {
	v := MustParse(benchDoc)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = v.String()
	}
}

func BenchmarkPretty(b *testing.B) {
	v := MustParse(benchDoc)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = value.Pretty(v)
	}
}
