// Package sion reads and writes the self-describing object notation used
// throughout the SQL++ paper: single-quoted strings, JSON-style arrays and
// tuples, and double-brace (or double-angle) bags:
//
//	{{ {'id': 3, 'name': 'Bob Smith', 'projects': ['OLAP Security']} }}
//
// The notation is the fixture format for the compatibility kit and the
// CLI's default data format. Writing is provided by value.String and
// value.Pretty; this package implements parsing.
package sion

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode"

	"sqlpp/internal/value"
)

// SyntaxError describes a parse failure with its byte offset.
type SyntaxError struct {
	Offset int
	Msg    string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sion: offset %d: %s", e.Offset, e.Msg)
}

// Parse reads a single value from src. Trailing whitespace and comments
// are permitted; any other trailing input is an error.
func Parse(src string) (value.Value, error) {
	p := &parser{src: src}
	v, err := p.parseValue()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, p.errf("unexpected trailing input")
	}
	return v, nil
}

// MustParse is Parse but panics on error; intended for fixtures and tests.
func MustParse(src string) value.Value {
	v, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return v
}

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			p.pos++
		case c == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '-':
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *parser) hasPrefix(s string) bool {
	return strings.HasPrefix(p.src[p.pos:], s)
}

func (p *parser) parseValue() (value.Value, error) {
	p.skipSpace()
	switch {
	case p.pos >= len(p.src):
		return nil, p.errf("unexpected end of input")
	case p.hasPrefix("{{"):
		p.pos += 2
		return p.parseSeqUntil("}}", func(vs []value.Value) value.Value { return value.Bag(vs) })
	case p.hasPrefix("<<"):
		p.pos += 2
		return p.parseSeqUntil(">>", func(vs []value.Value) value.Value { return value.Bag(vs) })
	case p.peek() == '[':
		p.pos++
		return p.parseSeqUntil("]", func(vs []value.Value) value.Value { return value.Array(vs) })
	case p.peek() == '{':
		p.pos++
		return p.parseTuple()
	case p.peek() == '\'':
		s, err := p.parseString()
		if err != nil {
			return nil, err
		}
		return value.String(s), nil
	default:
		return p.parseScalarWord()
	}
}

// parseSeqUntil parses comma-separated values until the closing token.
func (p *parser) parseSeqUntil(close string, wrap func([]value.Value) value.Value) (value.Value, error) {
	var elems []value.Value
	p.skipSpace()
	if p.hasPrefix(close) {
		p.pos += len(close)
		return wrap(elems), nil
	}
	for {
		v, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		elems = append(elems, v)
		p.skipSpace()
		switch {
		case p.peek() == ',':
			p.pos++
		case p.hasPrefix(close):
			p.pos += len(close)
			return wrap(elems), nil
		default:
			return nil, p.errf("expected ',' or %q", close)
		}
	}
}

func (p *parser) parseTuple() (value.Value, error) {
	t := value.EmptyTuple()
	p.skipSpace()
	if p.peek() == '}' {
		p.pos++
		return t, nil
	}
	for {
		p.skipSpace()
		var name string
		switch {
		case p.peek() == '\'':
			s, err := p.parseString()
			if err != nil {
				return nil, err
			}
			name = s
		case p.peek() == '"':
			s, err := p.parseQuoted('"')
			if err != nil {
				return nil, err
			}
			name = s
		case isIdentStart(rune(p.peek())):
			name = p.parseIdent()
		default:
			return nil, p.errf("expected attribute name")
		}
		p.skipSpace()
		if p.peek() != ':' {
			return nil, p.errf("expected ':' after attribute name %q", name)
		}
		p.pos++
		v, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		t.Put(name, v)
		p.skipSpace()
		switch p.peek() {
		case ',':
			p.pos++
		case '}':
			p.pos++
			return t, nil
		default:
			return nil, p.errf("expected ',' or '}' in tuple")
		}
	}
}

func (p *parser) parseString() (string, error) { return p.parseQuoted('\'') }

// parseQuoted parses a quote-delimited string where the quote character is
// escaped by doubling, as in SQL.
func (p *parser) parseQuoted(q byte) (string, error) {
	if p.peek() != q {
		return "", p.errf("expected %q", string(q))
	}
	p.pos++
	var sb strings.Builder
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == q {
			if p.pos+1 < len(p.src) && p.src[p.pos+1] == q {
				sb.WriteByte(q)
				p.pos += 2
				continue
			}
			p.pos++
			return sb.String(), nil
		}
		sb.WriteByte(c)
		p.pos++
	}
	return "", p.errf("unterminated string")
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (p *parser) parseIdent() string {
	start := p.pos
	for p.pos < len(p.src) && isIdentPart(rune(p.src[p.pos])) {
		p.pos++
	}
	return p.src[start:p.pos]
}

// parseScalarWord parses numbers and the keywords true/false/null/missing
// and the blob literal x'..'.
func (p *parser) parseScalarWord() (value.Value, error) {
	c := p.peek()
	if c == '-' || c == '+' || (c >= '0' && c <= '9') {
		return p.parseNumber()
	}
	if (c == 'x' || c == 'X') && p.pos+1 < len(p.src) && p.src[p.pos+1] == '\'' {
		p.pos++
		hex, err := p.parseString()
		if err != nil {
			return nil, err
		}
		return decodeHex(hex, p)
	}
	if !isIdentStart(rune(c)) {
		return nil, p.errf("unexpected character %q", string(c))
	}
	word := p.parseIdent()
	switch strings.ToLower(word) {
	case "true":
		return value.True, nil
	case "false":
		return value.False, nil
	case "null":
		return value.Null, nil
	case "missing":
		return value.Missing, nil
	case "nan":
		return value.Float(nan()), nil
	}
	return nil, p.errf("unknown word %q", word)
}

func (p *parser) parseNumber() (value.Value, error) {
	start := p.pos
	if c := p.peek(); c == '-' || c == '+' {
		p.pos++
	}
	isFloat := false
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c >= '0' && c <= '9':
			p.pos++
		case c == '.':
			isFloat = true
			p.pos++
		case c == 'e' || c == 'E':
			isFloat = true
			p.pos++
			if n := p.peek(); n == '+' || n == '-' {
				p.pos++
			}
		default:
			goto done
		}
	}
done:
	text := p.src[start:p.pos]
	if !isFloat {
		if i, err := strconv.ParseInt(text, 10, 64); err == nil {
			return value.Int(i), nil
		}
		// Integer overflow falls through to the float path.
	}
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return nil, p.errf("invalid number %q", text)
	}
	return value.Float(f), nil
}

func decodeHex(s string, p *parser) (value.Value, error) {
	if len(s)%2 != 0 {
		return nil, p.errf("odd-length hex blob")
	}
	out := make(value.Bytes, len(s)/2)
	for i := 0; i < len(s); i += 2 {
		hi, ok1 := hexDigit(s[i])
		lo, ok2 := hexDigit(s[i+1])
		if !ok1 || !ok2 {
			return nil, p.errf("invalid hex digit in blob")
		}
		out[i/2] = hi<<4 | lo
	}
	return out, nil
}

func hexDigit(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

func nan() float64 { return math.NaN() }
