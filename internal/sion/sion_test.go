package sion

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"sqlpp/internal/value"
)

func TestParseScalars(t *testing.T) {
	cases := []struct {
		src  string
		want value.Value
	}{
		{"1", value.Int(1)},
		{"-42", value.Int(-42)},
		{"+7", value.Int(7)},
		{"1.5", value.Float(1.5)},
		{"-0.25", value.Float(-0.25)},
		{"1e3", value.Float(1000)},
		{"2.5E-1", value.Float(0.25)},
		{"true", value.True},
		{"FALSE", value.False},
		{"null", value.Null},
		{"NULL", value.Null},
		{"missing", value.Missing},
		{"MISSING", value.Missing},
		{"'hello'", value.String("hello")},
		{"'it''s'", value.String("it's")},
		{"''", value.String("")},
		{"x'dead'", value.Bytes{0xde, 0xad}},
		{"X'00ff'", value.Bytes{0x00, 0xff}},
	}
	for _, c := range cases {
		got, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if !value.DeepEqual(got, c.want) {
			t.Errorf("Parse(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestParseNaN(t *testing.T) {
	got, err := Parse("NaN")
	if err != nil {
		t.Fatal(err)
	}
	f, ok := got.(value.Float)
	if !ok || !math.IsNaN(float64(f)) {
		t.Errorf("Parse(NaN) = %v", got)
	}
}

func TestParseCollections(t *testing.T) {
	cases := []struct {
		src  string
		want value.Value
	}{
		{"[]", value.Array(nil)},
		{"[1, 2]", value.Array{value.Int(1), value.Int(2)}},
		{"{{}}", value.Bag(nil)},
		{"{{1}}", value.Bag{value.Int(1)}},
		{"<<1, 'a'>>", value.Bag{value.Int(1), value.String("a")}},
		{"{}", value.EmptyTuple()},
		{"{'a': 1}", value.NewTuple(value.Field{Name: "a", Value: value.Int(1)})},
		{`{"a": 1}`, value.NewTuple(value.Field{Name: "a", Value: value.Int(1)})},
		{"{a: 1}", value.NewTuple(value.Field{Name: "a", Value: value.Int(1)})},
	}
	for _, c := range cases {
		got, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if !value.Equivalent(got, c.want) {
			t.Errorf("Parse(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestParseNested(t *testing.T) {
	got, err := Parse(`{{
	  -- a comment
	  {'id': 3, 'projects': [{'name': 'OLAP Security'}], 'tags': <<'x'>>}
	}}`)
	if err != nil {
		t.Fatal(err)
	}
	bag, ok := got.(value.Bag)
	if !ok || len(bag) != 1 {
		t.Fatalf("got %v", got)
	}
	tup := bag[0].(*value.Tuple)
	if tup.Len() != 3 {
		t.Fatalf("tuple fields = %d", tup.Len())
	}
}

func TestTupleMissingDropped(t *testing.T) {
	got := MustParse("{'a': missing, 'b': 1}")
	tup := got.(*value.Tuple)
	if tup.Len() != 1 {
		t.Fatalf("MISSING attribute must be dropped, got %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"", "{", "[1,", "{'a'}", "{'a': }", "'unterminated",
		"1 2", "{{1,}}", "<<1", "frob", "x'abc'", "x'zz'", "[1 2]",
		"{1: 2}",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		} else if _, ok := err.(*SyntaxError); !ok {
			t.Errorf("Parse(%q) error type %T, want *SyntaxError", src, err)
		}
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse("[1, ")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("got %T", err)
	}
	if !strings.Contains(se.Error(), "offset") {
		t.Errorf("error should cite an offset: %s", se)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("{")
}

// Property: rendering then parsing reproduces an equivalent value.
func TestRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		v := randomValue(r, 3)
		src := v.String()
		back, err := Parse(src)
		if err != nil {
			t.Fatalf("round trip parse of %q: %v", src, err)
		}
		if !value.Equivalent(v, back) {
			t.Fatalf("round trip of %q gave %v", src, back)
		}
		// Pretty output parses back too.
		back2, err := Parse(value.Pretty(v))
		if err != nil || !value.Equivalent(v, back2) {
			t.Fatalf("pretty round trip of %v failed: %v", v, err)
		}
	}
}

// randomValue avoids NaN (NaN != NaN only through Compare; Key treats all
// NaNs alike so Equivalent holds — but keep floats finite for clarity)
// and avoids MISSING inside tuples (unrepresentable).
func randomValue(r *rand.Rand, depth int) value.Value {
	max := 9
	if depth <= 0 {
		max = 6
	}
	switch r.Intn(max) {
	case 0:
		return value.Null
	case 1:
		return value.Bool(r.Intn(2) == 0)
	case 2:
		return value.Int(r.Int63n(1e9) - 5e8)
	case 3:
		return value.Float(float64(r.Int63n(1e6)) / 64)
	case 4:
		const alphabet = "ab'c δ\n"
		n := r.Intn(8)
		rs := make([]rune, n)
		for i := range rs {
			rs[i] = []rune(alphabet)[r.Intn(7)]
		}
		return value.String(rs)
	case 5:
		b := make(value.Bytes, r.Intn(5))
		r.Read(b)
		return b
	case 6:
		out := make(value.Array, r.Intn(4))
		for i := range out {
			out[i] = randomValue(r, depth-1)
		}
		return out
	case 7:
		out := make(value.Bag, r.Intn(4))
		for i := range out {
			out[i] = randomValue(r, depth-1)
		}
		return out
	default:
		t := value.EmptyTuple()
		for i, n := 0, r.Intn(4); i < n; i++ {
			t.Put(string(rune('a'+r.Intn(5))), randomValue(r, depth-1))
		}
		return t
	}
}
