package stats

import (
	"reflect"
	"testing"

	"sqlpp/internal/value"
)

// fuzzRows decodes an arbitrary byte stream into a bounded list of rows
// with heterogeneous field values, so the fuzzer explores mixed-type
// paths, NULLs, absent fields, nested tuples, and adversarial strings.
func fuzzRows(data []byte) []value.Value {
	const maxRows = 512
	var rows []value.Value
	i := 0
	next := func() byte {
		if i >= len(data) {
			return 0
		}
		b := data[i]
		i++
		return b
	}
	for i < len(data) && len(rows) < maxRows {
		t := value.EmptyTuple()
		for f := 0; f < 3; f++ {
			name := string(rune('a' + f))
			switch next() % 8 {
			case 0:
				t.Put(name, value.Int(int64(next())|int64(next())<<8))
			case 1:
				t.Put(name, value.Float(float64(int64(next()))/(float64(next())+1)))
			case 2:
				n := int(next()) % 8
				s := make([]byte, 0, n)
				for j := 0; j < n; j++ {
					s = append(s, next())
				}
				t.Put(name, value.String(string(s)))
			case 3:
				t.Put(name, value.Bool(next()%2 == 0))
			case 4:
				t.Put(name, value.Null)
			case 5:
				sub := value.EmptyTuple()
				sub.Put("z", value.Int(int64(next())%16))
				t.Put(name, sub)
			case 6:
				t.Put(name, value.Array{value.Int(int64(next()) % 4)})
			default: // absent field
			}
		}
		rows = append(rows, t)
	}
	return rows
}

// FuzzStats drives the statistics subsystem with arbitrary row sets:
// building, extending, and merging must never panic, and the resulting
// snapshot must be byte-deterministic under permuted ingest (reversal
// permutes every pair) and commutative under Merge. The estimators are
// then probed for NaN/negative escapes.
func FuzzStats(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte("\x00\x00\xff\xff statistics never panic \x02\x02\x02"))
	seed := make([]byte, 0, 4096)
	for i := 0; i < 4096; i++ {
		seed = append(seed, byte(i*7+i/13))
	}
	f.Add(seed) // enough rows to saturate the per-path sketches
	f.Fuzz(func(t *testing.T, data []byte) {
		rows := fuzzRows(data)
		fwd, err := Build(value.Bag(rows), nil)
		if err != nil {
			t.Fatalf("Build (no governor) errored: %v", err)
		}
		rev := make([]value.Value, len(rows))
		for i, r := range rows {
			rev[len(rows)-1-i] = r
		}
		bwd, err := Build(value.Bag(rev), nil)
		if err != nil {
			t.Fatalf("reverse Build errored: %v", err)
		}
		sf, sb := fwd.Summarize(), bwd.Summarize()
		if !reflect.DeepEqual(sf, sb) {
			t.Fatalf("permuted ingest diverged:\n%+v\nvs\n%+v", sf, sb)
		}

		half := len(rows) / 2
		a, _ := Build(value.Bag(rows[:half]), nil)
		b, err := a.Extended(rows[half:], nil)
		if err != nil {
			t.Fatalf("Extended errored: %v", err)
		}
		if !reflect.DeepEqual(b.Summarize(), sf) {
			t.Fatalf("Extended diverged from whole-set Build")
		}
		c, _ := Build(value.Bag(rows[half:]), nil)
		if ab, ba := Merge(a, c).Summarize(), Merge(c, a).Summarize(); !reflect.DeepEqual(ab, ba) {
			t.Fatalf("Merge is order-sensitive:\n%+v\nvs\n%+v", ab, ba)
		}

		for _, path := range [][]string{{"a"}, {"b"}, {"c"}, {"a", "z"}, {"nope"}} {
			if est, ok := fwd.NDV(path); ok && (est < 1 || est != est) {
				t.Fatalf("NDV(%v) = %f: not a sane estimate", path, est)
			}
			probes := []value.Value{value.Int(3), value.String("s"), value.Null, value.Bool(true)}
			for _, p := range probes {
				if frac, ok := fwd.EqFraction(path, p); ok && (frac < 0 || frac > 1 || frac != frac) {
					t.Fatalf("EqFraction(%v, %s) = %f: out of [0,1]", path, p, frac)
				}
			}
			if frac, ok := fwd.RangeFraction(path, value.Int(0), value.Int(100), true, false); ok && (frac < 0 || frac > 1 || frac != frac) {
				t.Fatalf("RangeFraction(%v) = %f: out of [0,1]", path, frac)
			}
		}
	})
}
