// Package stats collects per-collection statistics for cost-based
// planning over schema-optional data.
//
// SQL++ has no fixed columns, so statistics are kept per *path*: every
// dotted tuple path that actually occurs in the data gets a presence
// count, a NULL count (MISSING is derived: rows - present - null, which
// stays exact even for paths first seen late in the scan), per-value-
// class row counts with exact min/max, and a bottom-k distinct sketch
// that doubles as an NDV estimator and a coordinated sample of distinct
// values with exact per-value row counts. Equi-depth histograms are
// derived from that sample on demand.
//
// A Collection is immutable once built. Append extends it
// copy-on-write (Extended), exactly like secondary indexes, so readers
// of the old snapshot are never disturbed. Build order never changes a
// Collection's observable state: counters are sums, min/max are
// order-free, and the sketch keeps the k smallest hashes of the
// canonical key encodings — a set, not a sequence. Merge unions two
// collections' statistics under the same guarantee.
//
// Documented estimation bounds:
//
//   - While a path has at most sketchK distinct values, NDV, equality
//     fractions, and range fractions are exact (the sketch holds every
//     distinct value with its exact row count).
//   - Beyond sketchK distinct values the sketch is a uniform sample of
//     the distinct values; NDV uses the standard KMV estimator
//     (k-1)/max-normalized-hash, equality against an unsampled value
//     falls back to the uniform 1/NDV assumption, and range fractions
//     are row-weighted over the sample.
//   - At most maxPaths paths are tracked (the lexicographically
//     smallest, so the tracked set is ingest-order-independent) to
//     depth maxDepth; untracked paths estimate as unknown and the
//     planner stays on its heuristics for them.
package stats

import (
	"sort"
	"strings"

	"sqlpp/internal/eval"
	"sqlpp/internal/faultinject"
	"sqlpp/internal/value"
)

const (
	// sketchK is the bottom-k distinct-sketch size per path.
	sketchK = 256
	// maxPaths bounds the tracked paths per collection.
	maxPaths = 64
	// maxDepth bounds the tuple-nesting depth of tracked paths.
	maxDepth = 4
	// histBuckets bounds the derived equi-depth histogram per class.
	histBuckets = 16
)

// The value classes statistics are kept per. They mirror the index
// package's comparison classes, with int and float folded into one
// numeric class (they compare and join across).
const (
	classBool = iota
	classNumber
	classString
	classBytes
	classArray
	classTuple
	classOther
	nClasses
)

var className = [nClasses]string{"bool", "number", "string", "bytes", "array", "tuple", "other"}

// classOf maps a present value to its class; absent values (MISSING,
// NULL) are counted separately and return -1.
func classOf(v value.Value) int {
	switch v.Kind() {
	case value.KindMissing, value.KindNull:
		return -1
	case value.KindBool:
		return classBool
	case value.KindInt, value.KindFloat:
		return classNumber
	case value.KindString:
		return classString
	case value.KindBytes:
		return classBytes
	case value.KindArray:
		return classArray
	case value.KindTuple:
		return classTuple
	default:
		return classOther
	}
}

// entry is one sampled distinct value: its canonical key encoding, a
// representative value, and the exact number of rows carrying it. On the
// (hash-collision) chance two distinct keys share a hash, the smaller
// key is kept and the counts merge — deterministic, and flagged by the
// key check at estimate time.
type entry struct {
	key   string
	val   value.Value
	count int64
}

// sketch is a bottom-k distinct sketch over 64-bit FNV-1a hashes of
// canonical key encodings. Membership depends only on the hash value,
// never on arrival order, so permuted ingest builds an identical sketch.
type sketch struct {
	m         map[uint64]entry
	saturated bool // an eviction has happened: counts below are a sample
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func hashKey(key string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	// FNV-1a's last step is a single multiply, so keys differing only in
	// trailing bytes (consecutive integers share their canonical-key
	// prefix) hash near-monotonically — a bottom-k sketch over raw FNV
	// would retain the smallest values instead of a uniform sample. The
	// murmur3 finalizer restores avalanche on the low-order differences.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func newSketch() *sketch { return &sketch{m: make(map[uint64]entry, 8)} }

// clone deep-copies the sketch for copy-on-write extension.
// governor:bounded by sketchK entries
func (s *sketch) clone() *sketch {
	n := &sketch{m: make(map[uint64]entry, len(s.m)), saturated: s.saturated}
	for h, e := range s.m {
		n.m[h] = e
	}
	return n
}

// add folds one present value into the sketch, charging the governor for
// each newly retained sample value. It reports whether the value was
// already saturated out (callers don't care; errors do).
func (s *sketch) add(v value.Value, gov *eval.Governor) error {
	if faultinject.Enabled {
		if err := faultinject.Fire(faultinject.StatsSketchAdd); err != nil {
			return err
		}
	}
	key := value.Key(v)
	h := hashKey(key)
	if e, ok := s.m[h]; ok {
		if key < e.key {
			// Hash collision: keep the smaller key deterministically.
			e.key, e.val = key, v
		}
		e.count++
		s.m[h] = e
		return nil
	}
	if len(s.m) >= sketchK {
		// Full: admit only hashes below the current maximum, evicting it.
		maxH := uint64(0)
		for eh := range s.m {
			if eh > maxH {
				maxH = eh
			}
		}
		if h >= maxH {
			s.saturated = true
			return nil
		}
		delete(s.m, maxH)
		s.saturated = true
	}
	if gov != nil {
		if err := gov.ChargeValues("stats-build", 1, v); err != nil {
			return err
		}
	}
	s.m[h] = entry{key: key, val: v, count: 1}
	return nil
}

// ndv estimates the number of distinct values seen.
func (s *sketch) ndv() (est float64, exact bool) {
	if !s.saturated {
		return float64(len(s.m)), true
	}
	maxH := uint64(0)
	for h := range s.m {
		if h > maxH {
			maxH = h
		}
	}
	if maxH == 0 {
		return float64(len(s.m)), false
	}
	norm := float64(maxH) / float64(1<<63) / 2 // maxH / 2^64
	return float64(len(s.m)-1) / norm, false
}

// sample returns the retained entries sorted by value order — the
// deterministic substrate for histograms and range estimates.
// governor:bounded by sketchK entries
func (s *sketch) sample() []entry {
	out := make([]entry, 0, len(s.m))
	for _, e := range s.m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if c := value.Compare(out[i].val, out[j].val); c != 0 {
			return c < 0
		}
		return out[i].key < out[j].key
	})
	return out
}

// merge unions another sketch into this one (receiver must be owned),
// summing counts for shared hashes and trimming back to the k smallest.
// governor:bounded by 2*sketchK entries
func (s *sketch) merge(o *sketch) {
	for h, oe := range o.m {
		if e, ok := s.m[h]; ok {
			if oe.key < e.key {
				e.key, e.val = oe.key, oe.val
			}
			e.count += oe.count
			s.m[h] = e
		} else {
			s.m[h] = oe
		}
	}
	s.saturated = s.saturated || o.saturated
	if len(s.m) > sketchK {
		hashes := make([]uint64, 0, len(s.m))
		for h := range s.m {
			hashes = append(hashes, h)
		}
		sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
		for _, h := range hashes[sketchK:] {
			delete(s.m, h)
		}
		s.saturated = true
	}
}

// classStats is the exact per-class breakdown for one path.
type classStats struct {
	rows     int64
	min, max value.Value // nil until the class is seen
}

func (c *classStats) observe(v value.Value) {
	c.rows++
	if c.min == nil || value.Compare(v, c.min) < 0 {
		c.min = v
	}
	if c.max == nil || value.Compare(v, c.max) > 0 {
		c.max = v
	}
}

// pathStats is everything tracked for one dotted path.
type pathStats struct {
	present int64 // rows where the path yields a present value
	null    int64 // rows where the path yields NULL
	classes [nClasses]classStats
	sk      *sketch
}

func (p *pathStats) clone() *pathStats {
	n := *p
	n.sk = p.sk.clone()
	return &n
}

// Collection is an immutable statistics snapshot over one registered
// collection.
type Collection struct {
	rows      int64
	paths     map[string]*pathStats
	truncated bool // more than maxPaths distinct paths exist in the data

	// owned marks paths this snapshot may mutate in place during an
	// incremental extend; everything else is shared with the snapshot it
	// was extended from.
	owned map[string]bool
}

// Build scans src (a collection, or a single value treated as one row)
// and returns its statistics, charging retained sample values to gov.
func Build(src value.Value, gov *eval.Governor) (*Collection, error) {
	elems, ok := value.Elements(src)
	if !ok {
		elems = []value.Value{src}
	}
	c := &Collection{paths: make(map[string]*pathStats), owned: make(map[string]bool)}
	for _, el := range elems {
		if err := c.addRow(el, gov); err != nil {
			return nil, err
		}
	}
	c.owned = nil
	return c, nil
}

// Extended returns a new snapshot covering the old rows plus elems. The
// receiver is never mutated: touched paths are cloned on first touch,
// untouched ones are shared.
func (c *Collection) Extended(elems []value.Value, gov *eval.Governor) (*Collection, error) {
	n := &Collection{
		rows:      c.rows,
		paths:     make(map[string]*pathStats, len(c.paths)),
		truncated: c.truncated,
		owned:     make(map[string]bool),
	}
	for k, v := range c.paths {
		n.paths[k] = v
	}
	for _, el := range elems {
		if err := n.addRow(el, gov); err != nil {
			return nil, err
		}
	}
	n.owned = nil
	return n, nil
}

// addRow folds one row into the (mutable, owned) collection under
// construction.
func (c *Collection) addRow(row value.Value, gov *eval.Governor) error {
	c.rows++
	if t, ok := row.(*value.Tuple); ok {
		return c.walk(t, "", 1, gov)
	}
	return nil
}

// walk records every dotted path of t under prefix, descending nested
// tuples to maxDepth.
// governor:charged-at sketch.add per retained sample value; path count bounded by maxPaths
func (c *Collection) walk(t *value.Tuple, prefix string, depth int, gov *eval.Governor) error {
	for _, f := range t.Fields() {
		path := f.Name
		if prefix != "" {
			path = prefix + "." + f.Name
		}
		ps := c.admit(path)
		if ps != nil {
			switch f.Value.Kind() {
			case value.KindMissing:
				// An explicit MISSING field is indistinguishable from an
				// absent one; the derived missing count covers it.
			case value.KindNull:
				ps.null++
			default:
				ps.present++
				ps.classes[classOf(f.Value)].observe(f.Value)
				if err := ps.sk.add(f.Value, gov); err != nil {
					return err
				}
			}
		}
		if sub, ok := f.Value.(*value.Tuple); ok && depth < maxDepth {
			if err := c.walk(sub, path, depth+1, gov); err != nil {
				return err
			}
		}
	}
	return nil
}

// admit returns the mutable pathStats for path, creating or
// copy-on-write-cloning it as needed. When the path budget is full, the
// lexicographically largest tracked path is evicted for a smaller
// newcomer — so the final tracked set depends only on the data, never
// on ingest order — and larger newcomers are rejected.
func (c *Collection) admit(path string) *pathStats {
	if ps, ok := c.paths[path]; ok {
		if c.owned[path] {
			return ps
		}
		cl := ps.clone()
		c.paths[path] = cl
		c.owned[path] = true
		return cl
	}
	if len(c.paths) >= maxPaths {
		maxPath := ""
		for p := range c.paths {
			if p > maxPath {
				maxPath = p
			}
		}
		c.truncated = true
		if path >= maxPath {
			return nil
		}
		delete(c.paths, maxPath)
		delete(c.owned, maxPath)
	}
	ps := &pathStats{sk: newSketch()}
	c.paths[path] = ps
	c.owned[path] = true
	return ps
}

// Merge returns the union of two statistics snapshots, as if one
// collection held both row sets. Merge(a, b) and Merge(b, a) are
// observably identical within the documented sketch bounds.
// governor:bounded by maxPaths tracked paths
func Merge(a, b *Collection) *Collection {
	out := &Collection{
		rows:      a.rows + b.rows,
		paths:     make(map[string]*pathStats, len(a.paths)),
		truncated: a.truncated || b.truncated,
	}
	for p, ps := range a.paths {
		out.paths[p] = ps.clone()
	}
	for p, bp := range b.paths {
		ap, ok := out.paths[p]
		if !ok {
			out.paths[p] = bp.clone()
			continue
		}
		ap.present += bp.present
		ap.null += bp.null
		for i := range ap.classes {
			bc := bp.classes[i]
			ap.classes[i].rows += bc.rows
			if bc.min != nil && (ap.classes[i].min == nil || value.Compare(bc.min, ap.classes[i].min) < 0) {
				ap.classes[i].min = bc.min
			}
			if bc.max != nil && (ap.classes[i].max == nil || value.Compare(bc.max, ap.classes[i].max) > 0) {
				ap.classes[i].max = bc.max
			}
		}
		ap.sk.merge(bp.sk)
	}
	if len(out.paths) > maxPaths {
		names := make([]string, 0, len(out.paths))
		for p := range out.paths {
			names = append(names, p)
		}
		sort.Strings(names)
		for _, p := range names[maxPaths:] {
			delete(out.paths, p)
		}
		out.truncated = true
	}
	return out
}

// Rows reports the collection cardinality.
func (c *Collection) Rows() int64 {
	if c == nil {
		return 0
	}
	return c.rows
}

// lookup resolves a dotted path.
func (c *Collection) lookup(path []string) *pathStats {
	if c == nil || len(path) == 0 {
		return nil
	}
	return c.paths[strings.Join(path, ".")]
}

// NDV estimates the number of distinct present values at path. ok is
// false when the path is untracked (no estimate, planner stays on
// heuristics).
func (c *Collection) NDV(path []string) (est float64, ok bool) {
	ps := c.lookup(path)
	if ps == nil {
		return 0, false
	}
	est, _ = ps.sk.ndv()
	if est < 1 {
		est = 1
	}
	return est, true
}

// EqFraction estimates the fraction of rows whose path equals v. Exact
// for sampled values (and for every value while the path has at most
// sketchK distinct values); 1/NDV uniform fallback beyond that.
// Equality against MISSING or NULL is never TRUE, so those estimate 0.
func (c *Collection) EqFraction(path []string, v value.Value) (frac float64, ok bool) {
	ps := c.lookup(path)
	if ps == nil || c.rows == 0 {
		return 0, false
	}
	if value.IsAbsent(v) {
		return 0, true
	}
	key := value.Key(v)
	if e, hit := ps.sk.m[hashKey(key)]; hit && e.key == key {
		return float64(e.count) / float64(c.rows), true
	}
	if !ps.sk.saturated {
		return 0, true // every distinct value is sampled; v never occurs
	}
	ndv, _ := ps.sk.ndv()
	return float64(ps.present) / float64(c.rows) / ndv, true
}

// RangeFraction estimates the fraction of rows whose path falls in
// [lo, hi] (nil bounds are unbounded; inclusivity per flag), row-
// weighted over the distinct-value sample. Only the scalar class of the
// bounds participates — cross-class comparisons are never TRUE.
// governor:bounded by sketchK sample entries
func (c *Collection) RangeFraction(path []string, lo, hi value.Value, loIncl, hiIncl bool) (frac float64, ok bool) {
	ps := c.lookup(path)
	if ps == nil || c.rows == 0 {
		return 0, false
	}
	cls := -1
	if lo != nil {
		cls = classOf(lo)
	} else if hi != nil {
		cls = classOf(hi)
	}
	if cls < 0 || (lo != nil && hi != nil && classOf(hi) != cls) {
		return 0, false
	}
	var total, matching int64
	for _, e := range ps.sk.sample() {
		if classOf(e.val) != cls {
			continue
		}
		total += e.count
		if lo != nil {
			if cmp := value.Compare(e.val, lo); cmp < 0 || (cmp == 0 && !loIncl) {
				continue
			}
		}
		if hi != nil {
			if cmp := value.Compare(e.val, hi); cmp > 0 || (cmp == 0 && !hiIncl) {
				continue
			}
		}
		matching += e.count
	}
	if total == 0 {
		return 0, true
	}
	classRows := ps.classes[cls].rows
	return float64(matching) / float64(total) * float64(classRows) / float64(c.rows), true
}

// Summary is the JSON-ready rendering of a Collection, used by the
// stats endpoint and the CLIs.
type Summary struct {
	Rows      int64         `json:"rows"`
	Truncated bool          `json:"truncated,omitempty"`
	Paths     []PathSummary `json:"paths"`
}

// PathSummary summarizes one tracked path.
type PathSummary struct {
	Path     string         `json:"path"`
	Present  int64          `json:"present"`
	Null     int64          `json:"null"`
	Missing  int64          `json:"missing"`
	NDV      float64        `json:"ndv"`
	NDVExact bool           `json:"ndv_exact"`
	Classes  []ClassSummary `json:"classes,omitempty"`
}

// ClassSummary summarizes one value class at a path.
type ClassSummary struct {
	Class     string       `json:"class"`
	Rows      int64        `json:"rows"`
	Min       string       `json:"min"`
	Max       string       `json:"max"`
	Histogram []HistBucket `json:"histogram,omitempty"`
}

// HistBucket is one equi-depth bucket derived from the distinct-value
// sample: sampled rows and distinct values up to (and including) the
// bound.
type HistBucket struct {
	UpperBound string `json:"upper_bound"`
	Rows       int64  `json:"rows"`
	Distinct   int64  `json:"distinct"`
}

// Summarize renders the collection deterministically (paths and buckets
// sorted).
// governor:bounded by maxPaths paths and sketchK sample entries
func (c *Collection) Summarize() Summary {
	if c == nil {
		return Summary{}
	}
	out := Summary{Rows: c.rows, Truncated: c.truncated}
	names := make([]string, 0, len(c.paths))
	for p := range c.paths {
		names = append(names, p)
	}
	sort.Strings(names)
	for _, p := range names {
		ps := c.paths[p]
		ndv, exact := ps.sk.ndv()
		sum := PathSummary{
			Path:     p,
			Present:  ps.present,
			Null:     ps.null,
			Missing:  c.rows - ps.present - ps.null,
			NDV:      ndv,
			NDVExact: exact,
		}
		sample := ps.sk.sample()
		for cls := 0; cls < nClasses; cls++ {
			cs := ps.classes[cls]
			if cs.rows == 0 {
				continue
			}
			csum := ClassSummary{
				Class: className[cls],
				Rows:  cs.rows,
				Min:   cs.min.String(),
				Max:   cs.max.String(),
			}
			csum.Histogram = equiDepth(sample, cls)
			sum.Classes = append(sum.Classes, csum)
		}
		out.Paths = append(out.Paths, sum)
	}
	return out
}

// equiDepth folds the class's slice of the sorted sample into at most
// histBuckets buckets of (approximately) equal sampled row weight.
// governor:bounded by sketchK sample entries
func equiDepth(sample []entry, cls int) []HistBucket {
	var in []entry
	var total int64
	for _, e := range sample {
		if classOf(e.val) == cls {
			in = append(in, e)
			total += e.count
		}
	}
	if len(in) == 0 {
		return nil
	}
	per := total/histBuckets + 1
	var out []HistBucket
	var cur HistBucket
	for _, e := range in {
		cur.Rows += e.count
		cur.Distinct++
		cur.UpperBound = e.val.String()
		if cur.Rows >= per && len(out) < histBuckets-1 {
			out = append(out, cur)
			cur = HistBucket{}
		}
	}
	if cur.Distinct > 0 {
		out = append(out, cur)
	}
	return out
}
