package stats

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"sqlpp/internal/value"
)

// row builds a one-level tuple from alternating name/value pairs.
func row(pairs ...any) value.Value {
	t := value.EmptyTuple()
	for i := 0; i < len(pairs); i += 2 {
		t.Put(pairs[i].(string), pairs[i+1].(value.Value))
	}
	return t
}

func mustBuild(t *testing.T, src value.Value) *Collection {
	t.Helper()
	c, err := Build(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestBuildBasicCounts locks the exact bookkeeping on a collection small
// enough that nothing is estimated: cardinality, per-path present/NULL/
// MISSING splits, exact NDV, and per-class min/max.
func TestBuildBasicCounts(t *testing.T) {
	c := mustBuild(t, value.Bag{
		row("a", value.Int(1), "b", value.String("x")),
		row("a", value.Int(2), "b", value.Null),
		row("a", value.Int(1)),
		row("b", value.String("y")),
		row("a", value.Float(2.5), "b", value.String("x")),
	})
	if got := c.Rows(); got != 5 {
		t.Fatalf("rows = %d, want 5", got)
	}
	s := c.Summarize()
	if len(s.Paths) != 2 {
		t.Fatalf("paths = %d, want 2 (a, b)", len(s.Paths))
	}
	a, b := s.Paths[0], s.Paths[1]
	if a.Path != "a" || b.Path != "b" {
		t.Fatalf("paths sorted wrong: %q, %q", a.Path, b.Path)
	}
	if a.Present != 4 || a.Null != 0 || a.Missing != 1 {
		t.Errorf("a: present=%d null=%d missing=%d, want 4/0/1", a.Present, a.Null, a.Missing)
	}
	if b.Present != 3 || b.Null != 1 || b.Missing != 1 {
		t.Errorf("b: present=%d null=%d missing=%d, want 3/1/1", b.Present, b.Null, b.Missing)
	}
	if !a.NDVExact || a.NDV != 3 { // 1, 2, 2.5
		t.Errorf("a: ndv=%v exact=%v, want exactly 3", a.NDV, a.NDVExact)
	}
	if len(a.Classes) != 1 || a.Classes[0].Class != "number" {
		t.Fatalf("a classes = %+v, want one number class", a.Classes)
	}
	if a.Classes[0].Min != "1" || a.Classes[0].Max != "2.5" {
		t.Errorf("a number min/max = %s/%s, want 1/2.5", a.Classes[0].Min, a.Classes[0].Max)
	}
	if len(b.Classes) != 1 || b.Classes[0].Class != "string" || b.Classes[0].Rows != 3 {
		t.Errorf("b classes = %+v, want one string class over 3 rows", b.Classes)
	}
}

// TestNDVEstimateSaturated: far past the sketch size, the bottom-k
// estimator must stay within a loose relative error (the theoretical
// standard error at k=256 is ~6%).
func TestNDVEstimateSaturated(t *testing.T) {
	const n = 50000
	elems := make(value.Bag, 0, n)
	for i := 0; i < n; i++ {
		elems = append(elems, row("k", value.Int(int64(i))))
	}
	c := mustBuild(t, elems)
	est, ok := c.NDV([]string{"k"})
	if !ok {
		t.Fatal("no NDV for k")
	}
	if est < 0.75*n || est > 1.25*n {
		t.Fatalf("NDV estimate %f for %d distinct values: outside 25%%", est, n)
	}
	if s := c.Summarize(); s.Paths[0].NDVExact {
		t.Fatal("50000 distinct values reported as exact NDV")
	}
}

// TestFractionsExact: with fewer distinct values than the sketch holds,
// equality fractions are exact and range fractions are exact over the
// (complete) sample.
func TestFractionsExact(t *testing.T) {
	const n = 1000
	elems := make(value.Bag, 0, n)
	for i := 0; i < n; i++ {
		elems = append(elems, row("g", value.Int(int64(i%10))))
	}
	c := mustBuild(t, elems)
	if frac, ok := c.EqFraction([]string{"g"}, value.Int(5)); !ok || frac != 0.1 {
		t.Errorf("EqFraction(g=5) = %f, %v; want exactly 0.1", frac, ok)
	}
	if frac, ok := c.EqFraction([]string{"g"}, value.Int(42)); !ok || frac != 0 {
		t.Errorf("EqFraction(g=42) = %f, %v; want exactly 0 (absent, unsaturated)", frac, ok)
	}
	frac, ok := c.RangeFraction([]string{"g"}, value.Int(0), value.Int(5), true, false)
	if !ok || frac != 0.5 {
		t.Errorf("RangeFraction(0 <= g < 5) = %f, %v; want exactly 0.5", frac, ok)
	}
}

// TestRangeFractionSampled: saturated sketches estimate range fractions
// from the retained sample; the error must stay in the few-percent range
// binomial sampling predicts.
func TestRangeFractionSampled(t *testing.T) {
	const n = 10000
	elems := make(value.Bag, 0, n)
	for i := 0; i < n; i++ {
		elems = append(elems, row("k", value.Int(int64(i))))
	}
	c := mustBuild(t, elems)
	frac, ok := c.RangeFraction([]string{"k"}, value.Int(0), value.Int(n/4), true, false)
	if !ok {
		t.Fatal("no range estimate")
	}
	if math.Abs(frac-0.25) > 0.1 {
		t.Fatalf("RangeFraction over the first quarter = %f, want 0.25 +- 0.1", frac)
	}
}

// TestExtendedCopyOnWrite: extending a snapshot must leave the original
// observably untouched while the extension sees both row sets.
func TestExtendedCopyOnWrite(t *testing.T) {
	elems := make(value.Bag, 0, 100)
	for i := 0; i < 100; i++ {
		elems = append(elems, row("k", value.Int(int64(i)), "tag", value.String("old")))
	}
	old := mustBuild(t, elems)
	before := old.Summarize()

	more := make([]value.Value, 0, 50)
	for i := 100; i < 150; i++ {
		more = append(more, row("k", value.Int(int64(i)), "tag", value.String("new")))
	}
	ext, err := old.Extended(more, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := old.Summarize(); !reflect.DeepEqual(before, got) {
		t.Fatalf("Extended mutated the original snapshot:\nbefore %+v\nafter  %+v", before, got)
	}
	if ext.Rows() != 150 {
		t.Fatalf("extended rows = %d, want 150", ext.Rows())
	}
	if est, ok := ext.NDV([]string{"k"}); !ok || est != 150 {
		t.Fatalf("extended NDV(k) = %f, %v; want exactly 150", est, ok)
	}
	if frac, ok := ext.EqFraction([]string{"tag"}, value.String("new")); !ok || math.Abs(frac-50.0/150) > 1e-9 {
		t.Fatalf("extended EqFraction(tag='new') = %f, %v; want 1/3", frac, ok)
	}
}

// randRows builds a heterogeneous collection: numbers, strings, bools,
// NULLs, absent fields, and a nested tuple path.
func randRows(rng *rand.Rand, n int) []value.Value {
	out := make([]value.Value, 0, n)
	for i := 0; i < n; i++ {
		t := value.EmptyTuple()
		switch rng.Intn(6) {
		case 0:
			t.Put("k", value.Int(int64(rng.Intn(500))))
		case 1:
			t.Put("k", value.Float(rng.Float64()*100))
		case 2:
			t.Put("k", value.String(fmt.Sprintf("s%03d", rng.Intn(300))))
		case 3:
			t.Put("k", value.Bool(rng.Intn(2) == 0))
		case 4:
			t.Put("k", value.Null)
		default: // absent
		}
		if rng.Intn(3) == 0 {
			sub := value.EmptyTuple()
			sub.Put("z", value.Int(int64(rng.Intn(20))))
			t.Put("n", sub)
		}
		out = append(out, t)
	}
	return out
}

// TestPermutedIngestDeterministic: sketch membership depends only on
// hash values and counts are exact for retained values, so the same
// multiset of rows must summarize identically regardless of ingest
// order — including well past saturation.
func TestPermutedIngestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	for trial := 0; trial < 20; trial++ {
		rows := randRows(rng, 200+rng.Intn(2000))
		perm := make([]value.Value, len(rows))
		for i, j := range rng.Perm(len(rows)) {
			perm[i] = rows[j]
		}
		a := mustBuild(t, value.Bag(rows))
		b := mustBuild(t, value.Bag(perm))
		if sa, sb := a.Summarize(), b.Summarize(); !reflect.DeepEqual(sa, sb) {
			t.Fatalf("trial %d: permuted ingest diverged:\n%+v\nvs\n%+v", trial, sa, sb)
		}
	}
}

// TestMergeCommutes: Merge(a, b) and Merge(b, a) must be observably
// identical, and agree with building over the concatenation.
func TestMergeCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		ra := randRows(rng, 100+rng.Intn(800))
		rb := randRows(rng, 100+rng.Intn(800))
		a := mustBuild(t, value.Bag(ra))
		b := mustBuild(t, value.Bag(rb))
		ab := Merge(a, b).Summarize()
		ba := Merge(b, a).Summarize()
		if !reflect.DeepEqual(ab, ba) {
			t.Fatalf("trial %d: Merge is order-sensitive:\n%+v\nvs\n%+v", trial, ab, ba)
		}
		both := mustBuild(t, value.Bag(append(append([]value.Value{}, ra...), rb...))).Summarize()
		if !reflect.DeepEqual(ab, both) {
			t.Fatalf("trial %d: Merge diverges from building over the union:\n%+v\nvs\n%+v", trial, ab, both)
		}
	}
}

// TestPathBudgetDeterministic: past maxPaths, the retained path set is
// the lexicographically smallest — independent of ingest order.
func TestPathBudgetDeterministic(t *testing.T) {
	n := maxPaths + 20
	wide := value.EmptyTuple()
	for i := n - 1; i >= 0; i-- { // descending insertion order on purpose
		wide.Put(fmt.Sprintf("p%03d", i), value.Int(int64(i)))
	}
	c := mustBuild(t, value.Bag{wide})
	s := c.Summarize()
	if !s.Truncated {
		t.Fatal("path budget overflow not flagged as truncated")
	}
	if len(s.Paths) != maxPaths {
		t.Fatalf("tracked paths = %d, want %d", len(s.Paths), maxPaths)
	}
	if got, want := s.Paths[len(s.Paths)-1].Path, fmt.Sprintf("p%03d", maxPaths-1); got != want {
		t.Fatalf("largest retained path = %s, want %s", got, want)
	}
}
