package types

import (
	"fmt"

	"sqlpp/internal/ast"
	"sqlpp/internal/lexer"
	"sqlpp/internal/value"
)

// ProblemCode classifies a static-checker finding so downstream layers
// (package sema) can map it to a severity without parsing the message.
type ProblemCode string

// Problem codes. The split that matters is type faults (stop-on-error
// mode would abort at runtime were the expression evaluated) versus
// guaranteed-MISSING findings (the dynamic semantics yield MISSING in
// both modes — navigation into an absent attribute is not a fault).
const (
	// Type faults under stop-on-error (§VI).
	CodeBagIndex      ProblemCode = "bag-index"      // indexing an unordered bag
	CodeNonNumeric    ProblemCode = "non-numeric"    // arithmetic over a provably non-numeric operand
	CodeIncomparable  ProblemCode = "incomparable"   // ordering between incompatible comparison classes
	CodeNonString     ProblemCode = "non-string"     // || or LIKE over a provably non-string operand
	CodeNavInto       ProblemCode = "nav-scalar"     // navigation into a scalar or collection
	CodeNonCollection ProblemCode = "non-collection" // COLL_* aggregate over a provably non-collection argument
	// Guaranteed MISSING in both modes.
	CodeClosedMiss ProblemCode = "closed-miss" // attribute a closed struct type proves absent
)

// IsTypeFault reports whether the code names a finding the stop-on-error
// typing mode (§VI) would abort on at runtime, as opposed to one the
// dynamic semantics absorb as MISSING in every mode.
func (c ProblemCode) IsTypeFault() bool { return c != CodeClosedMiss }

// Problem is one finding of the static checker.
type Problem struct {
	Pos  lexer.Pos
	Code ProblemCode
	Msg  string
}

// String renders the problem with its position.
func (p Problem) String() string { return fmt.Sprintf("%s: %s", p.Pos, p.Msg) }

// CheckQuery statically checks a rewritten (Core-form) query against the
// declared schemas: navigation into attributes that a closed struct type
// proves absent, ordering comparisons between provably incomparable
// types, and arithmetic over provably non-numeric operands. It
// implements the paper's §IV observation that the optional schema
// enables static type checking — findings are advisory (the dynamic
// semantics would yield MISSING), so they are returned, not enforced.
func CheckQuery(e ast.Expr, s *Schema) []Problem {
	c := &checker{schema: s}
	c.expr(e, typeEnv{})
	return c.problems
}

type typeEnv map[string]Type

func (env typeEnv) child() typeEnv {
	out := make(typeEnv, len(env)+2)
	for k, v := range env {
		out[k] = v
	}
	return out
}

type checker struct {
	schema   *Schema
	problems []Problem
}

func (c *checker) report(pos lexer.Pos, code ProblemCode, format string, args ...any) {
	c.problems = append(c.problems, Problem{Pos: pos, Code: code, Msg: fmt.Sprintf(format, args...)})
}

// expr computes the static type of e (Any when unknown), reporting
// problems along the way.
func (c *checker) expr(e ast.Expr, env typeEnv) Type {
	switch x := e.(type) {
	case nil:
		return Any
	case *ast.Literal:
		return literalType(x.Val)
	case *ast.VarRef:
		if t, ok := env[x.Name]; ok {
			return t
		}
		return Any
	case *ast.NamedRef:
		if t, ok := c.schema.TypeOf(x.Name); ok {
			return t
		}
		return Any
	case *ast.FieldAccess:
		base := c.expr(x.Base, env)
		return c.navigate(base, x.Name, x.Pos())
	case *ast.IndexAccess:
		base := c.expr(x.Base, env)
		c.expr(x.Index, env)
		switch bt := base.(type) {
		case *ArrayOf:
			return bt.Elem
		case *BagOf:
			c.report(x.Pos(), CodeBagIndex, "indexing into a bag: bags are unordered")
			return Any
		}
		return Any
	case *ast.Unary:
		t := c.expr(x.Operand, env)
		if x.Op == "-" && provablyNonNumeric(t) {
			c.report(x.Pos(), CodeNonNumeric, "unary - over %s", t)
		}
		return t
	case *ast.Binary:
		lt := c.expr(x.L, env)
		rt := c.expr(x.R, env)
		switch x.Op {
		case "+", "-", "*", "/", "%":
			if provablyNonNumeric(lt) {
				c.report(x.Pos(), CodeNonNumeric, "arithmetic %s over %s", x.Op, lt)
			}
			if provablyNonNumeric(rt) {
				c.report(x.Pos(), CodeNonNumeric, "arithmetic %s over %s", x.Op, rt)
			}
			return numericResult(lt, rt)
		case "<", "<=", ">", ">=":
			if incomparable(lt, rt) {
				c.report(x.Pos(), CodeIncomparable, "ordering comparison between %s and %s", lt, rt)
			}
			return BoolType
		case "=", "<>":
			return BoolType
		case "AND", "OR":
			return BoolType
		case "||":
			if provablyNot(lt, StringType) {
				c.report(x.Pos(), CodeNonString, "|| over %s", lt)
			}
			if provablyNot(rt, StringType) {
				c.report(x.Pos(), CodeNonString, "|| over %s", rt)
			}
			return StringType
		}
		return Any
	case *ast.Like:
		if t := c.expr(x.Target, env); provablyNot(t, StringType) {
			c.report(x.Pos(), CodeNonString, "LIKE over %s", t)
		}
		c.expr(x.Pattern, env)
		c.expr(x.Escape, env)
		return BoolType
	case *ast.Between:
		c.expr(x.Target, env)
		c.expr(x.Lo, env)
		c.expr(x.Hi, env)
		return BoolType
	case *ast.In:
		c.expr(x.Target, env)
		for _, l := range x.List {
			c.expr(l, env)
		}
		c.expr(x.Set, env)
		return BoolType
	case *ast.Is:
		c.expr(x.Target, env)
		return BoolType
	case *ast.Quantified:
		c.expr(x.Target, env)
		c.expr(x.Set, env)
		return BoolType
	case *ast.Exists:
		c.expr(x.Operand, env)
		return BoolType
	case *ast.Case:
		c.expr(x.Operand, env)
		var out Type
		for _, w := range x.Whens {
			c.expr(w.Cond, env)
			out = Unify(out, c.expr(w.Result, env))
		}
		if x.Else != nil {
			out = Unify(out, c.expr(x.Else, env))
		}
		if out == nil {
			return Any
		}
		return out
	case *ast.Call:
		var argTypes []Type
		for _, a := range x.Args {
			argTypes = append(argTypes, c.expr(a, env))
		}
		if collAggregates[x.Name] && len(argTypes) == 1 && provablyNonCollection(argTypes[0]) {
			c.report(x.Pos(), CodeNonCollection, "%s over %s, not a collection", x.Name, argTypes[0])
		}
		return Any
	case *ast.TupleCtor:
		st := &Struct{}
		for _, f := range x.Fields {
			vt := c.expr(f.Value, env)
			if lit, ok := f.Name.(*ast.Literal); ok {
				if name, ok := lit.Val.(value.String); ok {
					st.Fields = append(st.Fields, Field{Name: string(name), Type: vt})
					continue
				}
			}
			c.expr(f.Name, env)
			st.Open = true
		}
		return st
	case *ast.ArrayCtor:
		var elem Type
		for _, el := range x.Elems {
			elem = Unify(elem, c.expr(el, env))
		}
		if elem == nil {
			elem = Any
		}
		return &ArrayOf{Elem: elem}
	case *ast.BagCtor:
		var elem Type
		for _, el := range x.Elems {
			elem = Unify(elem, c.expr(el, env))
		}
		if elem == nil {
			elem = Any
		}
		return &BagOf{Elem: elem}
	case *ast.SFW:
		return c.sfw(x, env)
	case *ast.PivotQuery:
		c.pivot(x, env)
		return &Struct{Open: true}
	case *ast.SetOp:
		lt := c.expr(x.L, env)
		rt := c.expr(x.R, env)
		return Unify(lt, rt)
	case *ast.With:
		inner := env.child()
		for _, b := range x.Bindings {
			inner[b.Name] = c.expr(b.Expr, inner)
		}
		return c.expr(x.Body, inner)
	case *ast.Window:
		for _, a := range x.Fn.Args {
			c.expr(a, env)
		}
		return Any
	}
	return Any
}

// navigate types base.name, reporting definite misses.
func (c *checker) navigate(base Type, name string, pos lexer.Pos) Type {
	switch bt := base.(type) {
	case *Struct:
		if f, ok := bt.Attr(name); ok {
			return f.Type
		}
		if !bt.Open {
			c.report(pos, CodeClosedMiss, "attribute %q cannot exist: closed type %s", name, bt)
		}
		return Any
	case *Union:
		var out Type
		navigable := false
		for _, m := range bt.Members {
			if st, ok := m.(*Struct); ok {
				navigable = true
				if f, ok := st.Attr(name); ok {
					out = Unify(out, f.Type)
				}
			}
		}
		if !navigable {
			c.report(pos, CodeNavInto, "navigation .%s into %s, which has no tuple member", name, bt)
		}
		if out == nil {
			return Any
		}
		return out
	case *ArrayOf, *BagOf:
		c.report(pos, CodeNavInto, "navigation .%s into a collection; range over it with FROM instead", name)
		return Any
	case Primitive:
		if bt != Any && bt != NullType {
			c.report(pos, CodeNavInto, "navigation .%s into %s", name, bt)
		}
		return Any
	}
	return Any
}

// sfw types a query block and checks its clauses.
func (c *checker) sfw(q *ast.SFW, env typeEnv) Type {
	inner := env.child()
	for _, f := range q.From {
		c.fromItem(f, inner)
	}
	for _, l := range q.Lets {
		inner[l.Name] = c.expr(l.Expr, inner)
	}
	c.expr(q.Where, inner)
	post := inner
	if q.GroupBy != nil {
		post = env.child()
		for _, k := range q.GroupBy.Keys {
			post[k.Alias] = c.expr(k.Expr, inner)
		}
		if q.GroupBy.GroupAs != "" {
			content := &Struct{Open: true}
			post[q.GroupBy.GroupAs] = &BagOf{Elem: content}
		}
	}
	c.expr(q.Having, post)
	for _, w := range q.Windows {
		for _, a := range w.Fn.Args {
			c.expr(a, post)
		}
		for _, pe := range w.Spec.PartitionBy {
			c.expr(pe, post)
		}
		for _, o := range w.Spec.OrderBy {
			c.expr(o.Expr, post)
		}
		post[w.Name] = Any
	}
	elem := c.expr(q.Select.Value, post)
	for _, o := range q.OrderBy {
		c.expr(o.Expr, post)
	}
	c.expr(q.Limit, env)
	c.expr(q.Offset, env)
	if elem == nil {
		elem = Any
	}
	if len(q.OrderBy) > 0 {
		return &ArrayOf{Elem: elem}
	}
	return &BagOf{Elem: elem}
}

func (c *checker) pivot(q *ast.PivotQuery, env typeEnv) {
	inner := env.child()
	for _, f := range q.From {
		c.fromItem(f, inner)
	}
	for _, l := range q.Lets {
		inner[l.Name] = c.expr(l.Expr, inner)
	}
	c.expr(q.Where, inner)
	post := inner
	if q.GroupBy != nil {
		post = env.child()
		for _, k := range q.GroupBy.Keys {
			post[k.Alias] = c.expr(k.Expr, inner)
		}
		if q.GroupBy.GroupAs != "" {
			post[q.GroupBy.GroupAs] = &BagOf{Elem: &Struct{Open: true}}
		}
	}
	c.expr(q.Having, post)
	c.expr(q.Value, post)
	c.expr(q.Name, post)
}

// fromItem types the variables a FROM item introduces.
func (c *checker) fromItem(f ast.FromItem, env typeEnv) {
	switch x := f.(type) {
	case *ast.FromExpr:
		src := c.expr(x.Expr, env)
		env[x.As] = rangeElement(src)
		if x.AtVar != "" {
			env[x.AtVar] = IntType
		}
	case *ast.FromUnpivot:
		src := c.expr(x.Expr, env)
		env[x.ValueVar] = unpivotValue(src)
		env[x.NameVar] = StringType
	case *ast.FromJoin:
		c.fromItem(x.Left, env)
		c.fromItem(x.Right, env)
		c.expr(x.On, env)
	}
}

// rangeElement is the static type a FROM variable binds to when ranging
// over src.
func rangeElement(src Type) Type {
	switch t := src.(type) {
	case *ArrayOf:
		return t.Elem
	case *BagOf:
		return t.Elem
	case *Union:
		var out Type
		for _, m := range t.Members {
			out = Unify(out, rangeElement(m))
		}
		if out == nil {
			return Any
		}
		return out
	default:
		// Permissive mode binds non-collections as singletons.
		return src
	}
}

func unpivotValue(src Type) Type {
	st, ok := src.(*Struct)
	if !ok || st.Open {
		return Any
	}
	var out Type
	for _, f := range st.Fields {
		out = Unify(out, f.Type)
	}
	if out == nil {
		return Any
	}
	return out
}

func literalType(v value.Value) Type {
	switch v.Kind() {
	case value.KindBool:
		return BoolType
	case value.KindInt:
		return IntType
	case value.KindFloat:
		return FloatType
	case value.KindString:
		return StringType
	case value.KindBytes:
		return BytesType
	case value.KindNull:
		return NullType
	default:
		return Any
	}
}

// provablyNonNumeric reports whether no value of t can be numeric.
func provablyNonNumeric(t Type) bool {
	switch x := t.(type) {
	case Primitive:
		return x != Any && x != IntType && x != FloatType && x != NullType
	case *Union:
		for _, m := range x.Members {
			if !provablyNonNumeric(m) {
				return false
			}
		}
		return true
	case *Struct, *ArrayOf, *BagOf:
		return true
	}
	return false
}

// collAggregates is the aggregate set whose single argument must be a
// collection at runtime (aggInput makes a non-collection argument a type
// fault).
var collAggregates = map[string]bool{
	"COLL_COUNT": true, "COLL_SUM": true, "COLL_AVG": true,
	"COLL_MIN": true, "COLL_MAX": true,
	"COLL_EVERY": true, "COLL_ANY": true, "COLL_SOME": true,
	"COLL_ARRAY_AGG": true,
}

// provablyNonCollection reports whether no value of t can be a
// collection.
func provablyNonCollection(t Type) bool {
	switch x := t.(type) {
	case Primitive:
		return x != Any && x != NullType
	case *Struct:
		return true
	case *Union:
		for _, m := range x.Members {
			if !provablyNonCollection(m) {
				return false
			}
		}
		return true
	}
	return false
}

// provablyNot reports whether no value of t can have the primitive type
// want.
func provablyNot(t Type, want Primitive) bool {
	switch x := t.(type) {
	case Primitive:
		return x != Any && x != want && x != NullType
	case *Union:
		for _, m := range x.Members {
			if !provablyNot(m, want) {
				return false
			}
		}
		return true
	case *Struct, *ArrayOf, *BagOf:
		return true
	}
	return false
}

// incomparable reports whether ordering between the two types is
// provably a type fault: both are known scalar primitives of different
// comparison classes, or either is a known non-scalar.
func incomparable(a, b Type) bool {
	pa, aOK := a.(Primitive)
	pb, bOK := b.(Primitive)
	if aOK && bOK {
		if pa == Any || pb == Any || pa == NullType || pb == NullType {
			return false
		}
		return comparisonClass(pa) != comparisonClass(pb)
	}
	switch a.(type) {
	case *Struct, *ArrayOf, *BagOf:
		return true
	}
	switch b.(type) {
	case *Struct, *ArrayOf, *BagOf:
		return true
	}
	return false
}

// numericResult is the static type of an arithmetic expression: INT only
// when both sides are provably INT, DOUBLE when either side is known
// floating, Any otherwise.
func numericResult(a, b Type) Type {
	pa, aOK := a.(Primitive)
	pb, bOK := b.(Primitive)
	if aOK && bOK && pa == IntType && pb == IntType {
		return IntType
	}
	if (aOK && pa == FloatType) || (bOK && pb == FloatType) {
		return FloatType
	}
	return Any
}

func comparisonClass(p Primitive) int {
	switch p {
	case IntType, FloatType:
		return 1
	case StringType:
		return 2
	case BoolType:
		return 3
	case BytesType:
		return 4
	}
	return 0
}
