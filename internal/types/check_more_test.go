package types

import (
	"testing"

	"sqlpp/internal/sion"
	"sqlpp/internal/value"
)

func TestCheckPivotAndUnpivot(t *testing.T) {
	s := testSchema(t)
	// PIVOT value/name expressions are checked.
	problems := staticCheck(t, s, `PIVOT 2 * e.name AT e.title FROM emp AS e`)
	wantProblem(t, problems, "arithmetic * over STRING")
	// UNPIVOT over a closed struct types the value variable as the union
	// of the attribute types; navigating it is a definite miss since no
	// member is a tuple.
	problems = staticCheck(t, s, `SELECT VALUE v.zzz FROM emp AS e, UNPIVOT e.addr AS v AT n`)
	wantProblem(t, problems, "no tuple member")
	// The name variable is a STRING.
	problems = staticCheck(t, s, `SELECT VALUE 2 * n FROM emp AS e, UNPIVOT e.addr AS v AT n`)
	wantProblem(t, problems, "arithmetic * over STRING")
}

func TestCheckWindowsAndWith(t *testing.T) {
	s := testSchema(t)
	problems := staticCheck(t, s, `
		WITH x AS (SELECT VALUE e.name FROM emp AS e)
		SELECT 2 * v AS d, ROW_NUMBER() OVER (ORDER BY v) AS rn FROM x AS v`)
	wantProblem(t, problems, "arithmetic * over STRING")
}

func TestCheckOrderingOnCollections(t *testing.T) {
	s := testSchema(t)
	problems := staticCheck(t, s, `SELECT VALUE e.projects < e.projects FROM emp AS e`)
	wantProblem(t, problems, "ordering comparison")
	problems = staticCheck(t, s, `SELECT VALUE e.id FROM emp AS e WHERE e.addr > 1`)
	wantProblem(t, problems, "ordering comparison")
}

func TestCheckBagIndexing(t *testing.T) {
	s := NewSchema()
	s.Declare("b", &BagOf{Elem: IntType})
	problems := staticCheck(t, s, `SELECT VALUE x FROM b AS q LET x = q`)
	if len(problems) != 0 {
		t.Errorf("unexpected: %v", problems)
	}
	s.Declare("holder", &BagOf{Elem: &Struct{Fields: []Field{{Name: "bag", Type: &BagOf{Elem: IntType}}}}})
	problems = staticCheck(t, s, `SELECT VALUE h.bag[0] FROM holder AS h`)
	wantProblem(t, problems, "bags are unordered")
}

func TestMatchesBagAndBytes(t *testing.T) {
	bt := &BagOf{Elem: IntType}
	if !bt.Matches(sion.MustParse("{{1, 2}}")) {
		t.Error("bag of ints should match")
	}
	if bt.Matches(sion.MustParse("{{'x'}}")) || bt.Matches(sion.MustParse("[1]")) {
		t.Error("bag type must reject wrong shapes")
	}
	if !BytesType.Matches(sion.MustParse("x'00'")) || BytesType.Matches(sion.MustParse("'s'")) {
		t.Error("BINARY matching wrong")
	}
}

func TestValidateBagPath(t *testing.T) {
	typ, err := ParseType("BAG<INT>")
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(sion.MustParse("{{1, 'x'}}"), typ); err == nil {
		t.Error("bag with a string should fail BAG<INT>")
	}
	if err := Validate(sion.MustParse("[1]"), typ); err == nil {
		t.Error("array should fail BAG<INT>")
	}
}

func TestUnifyWithNil(t *testing.T) {
	if Unify(nil, IntType) != IntType || Unify(IntType, nil) != IntType {
		t.Error("nil unifies to the other side")
	}
	if Unify(Any, IntType) != IntType || Unify(IntType, Any) != IntType {
		t.Error("Any unifies to the specific side")
	}
}

func TestElementTypeHelper(t *testing.T) {
	if elementType(&ArrayOf{Elem: IntType}) != IntType {
		t.Error("array element")
	}
	if elementType(&BagOf{Elem: StringType}) != StringType {
		t.Error("bag element")
	}
	if elementType(IntType) != IntType {
		t.Error("non-collection passes through")
	}
}

// TestOptionalAdmitsBothAbsenceStyles: one schema with a '?' column
// validates the null-style and missing-style forms of the same data
// (§IV-A), which keeps schemas stable under the null/missing guarantee.
func TestOptionalAdmitsBothAbsenceStyles(t *testing.T) {
	_, typ, err := ParseCreateTable("CREATE TABLE emp (id INT, title STRING?)")
	if err != nil {
		t.Fatal(err)
	}
	nullStyle := sion.MustParse(`{{ {'id': 1, 'title': null} }}`)
	missingStyle := sion.MustParse(`{{ {'id': 1} }}`)
	presentStyle := sion.MustParse(`{{ {'id': 1, 'title': 'Engineer'} }}`)
	for _, v := range []struct {
		name string
		v    interface{ Kind() value.Kind }
	}{{"null-style", nullStyle}, {"missing-style", missingStyle}, {"present", presentStyle}} {
		if err := Validate(v.v.(value.Value), typ); err != nil {
			t.Errorf("%s rejected: %v", v.name, err)
		}
	}
	// The wrong type still fails even when optional.
	bad := sion.MustParse(`{{ {'id': 1, 'title': 7} }}`)
	if err := Validate(bad, typ); err == nil {
		t.Error("wrong-typed optional attribute must still fail")
	}
}
