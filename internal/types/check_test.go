package types

import (
	"strings"
	"testing"

	"sqlpp/internal/ast"
	"sqlpp/internal/parser"
	"sqlpp/internal/rewrite"
)

// checkNames adapts the schema to the rewriter's catalog interface for
// tests: every declared name resolves.
type checkNames struct{ s *Schema }

func (c checkNames) HasName(name string) bool {
	_, ok := c.s.TypeOf(name)
	return ok
}

func staticCheck(t *testing.T, s *Schema, query string) []Problem {
	t.Helper()
	tree, err := parser.Parse(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	core, err := rewrite.Rewrite(tree, rewrite.Options{Names: checkNames{s}, Schema: s})
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	return CheckQuery(core, s)
}

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema()
	if _, err := s.DeclareDDL(`CREATE TABLE emp (
	  id INT,
	  name STRING,
	  title STRING?,
	  projects ARRAY<STRING>,
	  addr STRUCT<city: STRING, zip: INT>
	)`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DeclareDDL(`CREATE TABLE emp_mixed (
	  id INT,
	  projects UNIONTYPE<STRING, ARRAY<STRING>>
	)`); err != nil {
		t.Fatal(err)
	}
	return s
}

func wantProblem(t *testing.T, problems []Problem, substr string) {
	t.Helper()
	for _, p := range problems {
		if strings.Contains(p.Msg, substr) {
			return
		}
	}
	t.Errorf("expected a problem containing %q, got %v", substr, problems)
}

func TestCheckCleanQueries(t *testing.T) {
	s := testSchema(t)
	clean := []string{
		`SELECT e.name, e.title FROM emp AS e WHERE e.id > 3`,
		`SELECT e.name, p FROM emp AS e, e.projects AS p WHERE p LIKE '%x%'`,
		`SELECT e.addr.city AS city FROM emp AS e`,
		`SELECT e.id + 1 AS next FROM emp AS e`,
		`SELECT e.name || '!' AS bang FROM emp AS e ORDER BY e.id`,
		`SELECT COUNT(*) AS n FROM emp AS e GROUP BY e.title`,
		`SELECT VALUE m.projects FROM emp_mixed AS m`,
	}
	for _, q := range clean {
		if problems := staticCheck(t, s, q); len(problems) != 0 {
			t.Errorf("clean query %q reported %v", q, problems)
		}
	}
}

func TestCheckNavigationMisses(t *testing.T) {
	s := testSchema(t)
	problems := staticCheck(t, s, `SELECT e.salary AS sal FROM emp AS e`)
	wantProblem(t, problems, `attribute "salary" cannot exist`)

	problems = staticCheck(t, s, `SELECT e.addr.country AS c FROM emp AS e`)
	wantProblem(t, problems, `attribute "country" cannot exist`)

	problems = staticCheck(t, s, `SELECT e.projects.name AS n FROM emp AS e`)
	wantProblem(t, problems, "into a collection")

	problems = staticCheck(t, s, `SELECT e.name.first AS f FROM emp AS e`)
	wantProblem(t, problems, "navigation .first into STRING")
}

func TestCheckTypeMisuse(t *testing.T) {
	s := testSchema(t)
	problems := staticCheck(t, s, `SELECT 2 * e.name AS x FROM emp AS e`)
	wantProblem(t, problems, "arithmetic * over STRING")

	problems = staticCheck(t, s, `SELECT e.id || 'x' AS x FROM emp AS e`)
	wantProblem(t, problems, "|| over INT")

	problems = staticCheck(t, s, `SELECT VALUE e.id LIKE 'a%' FROM emp AS e`)
	wantProblem(t, problems, "LIKE over INT")

	problems = staticCheck(t, s, `SELECT VALUE e.name < e.id FROM emp AS e`)
	wantProblem(t, problems, "ordering comparison between STRING and INT")
}

func TestCheckUnionNavigation(t *testing.T) {
	s := testSchema(t)
	// Navigating into UNIONTYPE<STRING, ARRAY<STRING>> has no tuple
	// member: definite miss.
	problems := staticCheck(t, s, `SELECT m.projects.name AS n FROM emp_mixed AS m`)
	wantProblem(t, problems, "no tuple member")
}

func TestCheckUndeclaredIsSilent(t *testing.T) {
	s := testSchema(t)
	s.Declare("anything", &BagOf{Elem: &Struct{Open: true}})
	problems := staticCheck(t, s, `SELECT a.whatever.deeper AS x FROM anything AS a WHERE 2 * a.zzz > 1`)
	if len(problems) != 0 {
		t.Errorf("open types must not produce findings, got %v", problems)
	}
}

func TestCheckThroughGroupAndSubquery(t *testing.T) {
	s := testSchema(t)
	// The key alias carries the key's type into the post-group scope.
	problems := staticCheck(t, s, `SELECT t || 'x' AS tx FROM emp AS e GROUP BY e.id AS t`)
	wantProblem(t, problems, "|| over INT")
	// Subquery element types flow to the outer FROM variable.
	problems = staticCheck(t, s, `SELECT 2 * n AS x FROM (SELECT VALUE e2.name FROM emp AS e2) AS n`)
	wantProblem(t, problems, "arithmetic * over STRING")
}

func TestCheckQueryDirect(t *testing.T) {
	// CheckQuery on a raw expression without FROM context.
	s := NewSchema()
	e := parser.MustParse("1 + 'x'")
	problems := CheckQuery(e, s)
	wantProblem(t, problems, "arithmetic + over STRING")
	var _ ast.Expr = e
}
