package types

import (
	"fmt"
	"strings"
	"unicode"
)

// ParseCreateTable parses the Hive-flavoured DDL the paper uses in
// Listing 5 to declare heterogeneous attributes:
//
//	CREATE TABLE emp_mixed (
//	  id INT,
//	  name STRING,
//	  title STRING,
//	  projects UNIONTYPE<STRING, ARRAY<STRING>>
//	);
//
// It returns the table name and a BagOf(closed Struct) type. Supported
// column types: the primitives (INT/BIGINT/SMALLINT/TINYINT, FLOAT/
// DOUBLE/REAL, STRING/VARCHAR/CHAR/TEXT, BOOLEAN, BINARY), and the
// compound forms ARRAY<T>, BAG<T>, STRUCT<name: T, ...>, and
// UNIONTYPE<T, ...>. A trailing '?' marks a column optional: the
// attribute may be absent or null (both of §IV-A's absence styles).
func ParseCreateTable(ddl string) (string, Type, error) {
	p := &ddlParser{src: ddl}
	p.skipSpace()
	if !p.word("CREATE") || !p.word("TABLE") {
		return "", nil, p.errf("expected CREATE TABLE")
	}
	name := p.ident()
	if name == "" {
		return "", nil, p.errf("expected table name")
	}
	for p.peek() == '.' {
		p.pos++
		part := p.ident()
		if part == "" {
			return "", nil, p.errf("expected name after '.'")
		}
		name += "." + part
	}
	p.skipSpace()
	if p.peek() != '(' {
		return "", nil, p.errf("expected '(' after table name")
	}
	p.pos++
	s := &Struct{}
	for {
		p.skipSpace()
		col := p.ident()
		if col == "" {
			return "", nil, p.errf("expected column name")
		}
		t, err := p.parseType()
		if err != nil {
			return "", nil, err
		}
		optional := false
		p.skipSpace()
		if p.peek() == '?' {
			p.pos++
			optional = true
		}
		s.Fields = append(s.Fields, Field{Name: col, Type: t, Optional: optional})
		p.skipSpace()
		switch p.peek() {
		case ',':
			p.pos++
		case ')':
			p.pos++
			p.skipSpace()
			if p.peek() == ';' {
				p.pos++
			}
			p.skipSpace()
			if p.pos != len(p.src) {
				return "", nil, p.errf("unexpected trailing input")
			}
			return name, &BagOf{Elem: s}, nil
		default:
			return "", nil, p.errf("expected ',' or ')' in column list")
		}
	}
}

// ParseType parses a standalone type expression in the same syntax.
func ParseType(src string) (Type, error) {
	p := &ddlParser{src: src}
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, p.errf("unexpected trailing input")
	}
	return t, nil
}

type ddlParser struct {
	src string
	pos int
}

func (p *ddlParser) errf(format string, args ...any) error {
	return fmt.Errorf("types: ddl offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *ddlParser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
			continue
		}
		if c == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '-' {
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
			continue
		}
		return
	}
}

func (p *ddlParser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

// word consumes the given keyword case-insensitively.
func (p *ddlParser) word(w string) bool {
	p.skipSpace()
	if len(p.src)-p.pos < len(w) {
		return false
	}
	if !strings.EqualFold(p.src[p.pos:p.pos+len(w)], w) {
		return false
	}
	end := p.pos + len(w)
	if end < len(p.src) && (unicode.IsLetter(rune(p.src[end])) || unicode.IsDigit(rune(p.src[end])) || p.src[end] == '_') {
		return false
	}
	p.pos = end
	return true
}

func (p *ddlParser) ident() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := rune(p.src[p.pos])
		if c == '_' || unicode.IsLetter(c) || (p.pos > start && unicode.IsDigit(c)) {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos]
}

func (p *ddlParser) parseType() (Type, error) {
	word := strings.ToUpper(p.ident())
	switch word {
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT":
		return IntType, nil
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL", "NUMERIC":
		return FloatType, nil
	case "STRING", "VARCHAR", "CHAR", "TEXT":
		return p.maybeParens(StringType)
	case "BOOLEAN", "BOOL":
		return BoolType, nil
	case "BINARY", "BYTES", "BLOB":
		return BytesType, nil
	case "ANY":
		return Any, nil
	case "NULL":
		return NullType, nil
	case "ARRAY":
		elem, err := p.angle1()
		if err != nil {
			return nil, err
		}
		return &ArrayOf{Elem: elem}, nil
	case "BAG", "MULTISET":
		elem, err := p.angle1()
		if err != nil {
			return nil, err
		}
		return &BagOf{Elem: elem}, nil
	case "UNIONTYPE", "UNION":
		members, err := p.angleList(false)
		if err != nil {
			return nil, err
		}
		ts := make([]Type, len(members))
		for i, m := range members {
			ts[i] = m.Type
		}
		return mkUnion(ts...), nil
	case "STRUCT":
		fields, err := p.angleList(true)
		if err != nil {
			return nil, err
		}
		return &Struct{Fields: fields}, nil
	case "":
		return nil, p.errf("expected type name")
	}
	return nil, p.errf("unknown type %q", word)
}

// maybeParens consumes an optional "(n)" length suffix after VARCHAR etc.
func (p *ddlParser) maybeParens(t Type) (Type, error) {
	p.skipSpace()
	if p.peek() != '(' {
		return t, nil
	}
	for p.pos < len(p.src) && p.src[p.pos] != ')' {
		p.pos++
	}
	if p.peek() != ')' {
		return nil, p.errf("unterminated length suffix")
	}
	p.pos++
	return t, nil
}

// angle1 parses "<T>".
func (p *ddlParser) angle1() (Type, error) {
	p.skipSpace()
	if p.peek() != '<' {
		return nil, p.errf("expected '<'")
	}
	p.pos++
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.peek() != '>' {
		return nil, p.errf("expected '>'")
	}
	p.pos++
	return t, nil
}

// angleList parses "<T, T, ...>" (named=false) or "<name: T, ...>"
// (named=true).
func (p *ddlParser) angleList(named bool) ([]Field, error) {
	p.skipSpace()
	if p.peek() != '<' {
		return nil, p.errf("expected '<'")
	}
	p.pos++
	var out []Field
	for {
		var f Field
		if named {
			f.Name = p.ident()
			if f.Name == "" {
				return nil, p.errf("expected field name")
			}
			p.skipSpace()
			if p.peek() != ':' {
				return nil, p.errf("expected ':' after field name")
			}
			p.pos++
		}
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		f.Type = t
		p.skipSpace()
		if p.peek() == '?' {
			p.pos++
			f.Optional = true
			p.skipSpace()
		}
		out = append(out, f)
		switch p.peek() {
		case ',':
			p.pos++
		case '>':
			p.pos++
			return out, nil
		default:
			return nil, p.errf("expected ',' or '>'")
		}
	}
}
