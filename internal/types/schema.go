package types

import (
	"fmt"
	"sort"
	"sync"

	"sqlpp/internal/value"
)

// Schema maps catalog names to declared (or inferred) types. A schema is
// always optional in SQL++: registering one enables validation, static
// navigation checking, and unqualified-name disambiguation, but queries
// over undeclared names keep working — and, per the paper's query
// stability tenet, imposing a schema on existing data never changes a
// working query's result.
type Schema struct {
	mu    sync.RWMutex
	types map[string]Type
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{types: make(map[string]Type)}
}

// Declare records the type of a named value.
func (s *Schema) Declare(name string, t Type) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.types[name] = t
}

// DeclareDDL parses a CREATE TABLE statement and declares the resulting
// collection type, returning the table name.
func (s *Schema) DeclareDDL(ddl string) (string, error) {
	name, t, err := ParseCreateTable(ddl)
	if err != nil {
		return "", err
	}
	s.Declare(name, t)
	return name, nil
}

// TypeOf returns the declared type of name.
func (s *Schema) TypeOf(name string) (Type, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.types[name]
	return t, ok
}

// Names returns the declared names, sorted.
func (s *Schema) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.types))
	for n := range s.types {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Check validates v against the declared type of name; an undeclared
// name passes (schema is optional).
func (s *Schema) Check(name string, v value.Value) error {
	t, ok := s.TypeOf(name)
	if !ok {
		return nil
	}
	if err := Validate(v, t); err != nil {
		return fmt.Errorf("types: %s does not conform to its schema: %w", name, err)
	}
	return nil
}

// VarHasAttr implements the rewriter's AttrOracle: it reports whether
// the collection named by sourceFmt (the formatted FROM source, e.g.
// "hr.emp") is declared to carry the attribute on its elements.
func (s *Schema) VarHasAttr(sourceFmt, attr string) (has, known bool) {
	t, ok := s.TypeOf(sourceFmt)
	if !ok {
		return false, false
	}
	elem := elementType(t)
	st, ok := elem.(*Struct)
	if !ok {
		return false, false
	}
	if _, found := st.Attr(attr); found {
		return true, true
	}
	// A closed struct definitively lacks the attribute; an open one
	// might still have it at runtime.
	if st.Open {
		return false, false
	}
	return false, true
}

func elementType(t Type) Type {
	switch x := t.(type) {
	case *ArrayOf:
		return x.Elem
	case *BagOf:
		return x.Elem
	default:
		return t
	}
}
