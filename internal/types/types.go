// Package types implements the optional-schema side of SQL++ (§IV):
// a logical type system with union types (heterogeneity can be declared,
// as in Hive's UNIONTYPE example of Listing 5), schema inference from
// self-describing data, value validation, and an attribute oracle that
// lets the rewriter disambiguate unqualified names when schemas are
// present — without ever being required for a query to run.
package types

import (
	"fmt"
	"sort"
	"strings"

	"sqlpp/internal/value"
)

// Type is a logical SQL++ type.
type Type interface {
	// String renders the type in DDL-like syntax.
	String() string
	// Matches reports whether v conforms to the type.
	Matches(v value.Value) bool
}

// Primitive is a scalar (or absent-value) type.
type Primitive uint8

// Primitive types. Null types a NULL value; there is deliberately no
// MISSING type: absence is a property of an attribute (Optional), not of
// a value.
const (
	Any Primitive = iota
	BoolType
	IntType
	FloatType
	StringType
	BytesType
	NullType
)

// String implements Type.
func (p Primitive) String() string {
	switch p {
	case BoolType:
		return "BOOLEAN"
	case IntType:
		return "INT"
	case FloatType:
		return "DOUBLE"
	case StringType:
		return "STRING"
	case BytesType:
		return "BINARY"
	case NullType:
		return "NULL"
	default:
		return "ANY"
	}
}

// Matches implements Type.
func (p Primitive) Matches(v value.Value) bool {
	switch p {
	case Any:
		return true
	case BoolType:
		return v.Kind() == value.KindBool
	case IntType:
		return v.Kind() == value.KindInt
	case FloatType:
		return v.Kind() == value.KindFloat || v.Kind() == value.KindInt
	case StringType:
		return v.Kind() == value.KindString
	case BytesType:
		return v.Kind() == value.KindBytes
	case NullType:
		return v.Kind() == value.KindNull
	}
	return false
}

// Union is a choice among member types (Hive UNIONTYPE).
type Union struct {
	Members []Type
}

// String implements Type.
func (u *Union) String() string {
	parts := make([]string, len(u.Members))
	for i, m := range u.Members {
		parts[i] = m.String()
	}
	return "UNIONTYPE<" + strings.Join(parts, ", ") + ">"
}

// Matches implements Type.
func (u *Union) Matches(v value.Value) bool {
	for _, m := range u.Members {
		if m.Matches(v) {
			return true
		}
	}
	return false
}

// ArrayOf is an ordered collection type.
type ArrayOf struct {
	Elem Type
}

// String implements Type.
func (a *ArrayOf) String() string { return "ARRAY<" + a.Elem.String() + ">" }

// Matches implements Type.
func (a *ArrayOf) Matches(v value.Value) bool {
	arr, ok := v.(value.Array)
	if !ok {
		return false
	}
	for _, e := range arr {
		if !a.Elem.Matches(e) {
			return false
		}
	}
	return true
}

// BagOf is an unordered collection type.
type BagOf struct {
	Elem Type
}

// String implements Type.
func (b *BagOf) String() string { return "BAG<" + b.Elem.String() + ">" }

// Matches implements Type.
func (b *BagOf) Matches(v value.Value) bool {
	bag, ok := v.(value.Bag)
	if !ok {
		return false
	}
	for _, e := range bag {
		if !b.Elem.Matches(e) {
			return false
		}
	}
	return true
}

// Field is one attribute of a Struct type.
type Field struct {
	Name string
	Type Type
	// Optional marks the attribute as allowed to be absent or null —
	// the typed form of §IV-A's two styles of absence. One schema with
	// optional attributes therefore validates both the null-style and
	// the missing-style form of the same data.
	Optional bool
}

// Struct is a tuple type. Open structs tolerate attributes beyond the
// declared fields (self-describing data with a partial schema); closed
// structs do not.
type Struct struct {
	Fields []Field
	Open   bool
}

// String implements Type.
func (s *Struct) String() string {
	parts := make([]string, 0, len(s.Fields)+1)
	for _, f := range s.Fields {
		opt := ""
		if f.Optional {
			opt = "?"
		}
		parts = append(parts, f.Name+opt+": "+f.Type.String())
	}
	if s.Open {
		parts = append(parts, "...")
	}
	return "STRUCT<" + strings.Join(parts, ", ") + ">"
}

// Matches implements Type.
func (s *Struct) Matches(v value.Value) bool {
	t, ok := v.(*value.Tuple)
	if !ok {
		return false
	}
	declared := make(map[string]bool, len(s.Fields))
	for _, f := range s.Fields {
		declared[f.Name] = true
		av, present := t.Get(f.Name)
		if !present {
			if !f.Optional {
				return false
			}
			continue
		}
		if f.Optional && av.Kind() == value.KindNull {
			continue
		}
		if !f.Type.Matches(av) {
			return false
		}
	}
	if !s.Open {
		for _, f := range t.Fields() {
			if !declared[f.Name] {
				return false
			}
		}
	}
	return true
}

// Attr returns the declared field, if any.
func (s *Struct) Attr(name string) (Field, bool) {
	for _, f := range s.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// Validate checks v against t and returns a descriptive error on the
// first mismatch (a path into the value).
func Validate(v value.Value, t Type) error {
	return validateAt(v, t, "$")
}

func validateAt(v value.Value, t Type, path string) error {
	switch x := t.(type) {
	case Primitive:
		if !x.Matches(v) {
			return fmt.Errorf("types: %s: expected %s, found %s", path, x, v.Kind())
		}
		return nil
	case *Union:
		for _, m := range x.Members {
			if m.Matches(v) {
				return nil
			}
		}
		return fmt.Errorf("types: %s: value of kind %s matches no member of %s", path, v.Kind(), x)
	case *ArrayOf:
		arr, ok := v.(value.Array)
		if !ok {
			return fmt.Errorf("types: %s: expected array, found %s", path, v.Kind())
		}
		for i, e := range arr {
			if err := validateAt(e, x.Elem, fmt.Sprintf("%s[%d]", path, i)); err != nil {
				return err
			}
		}
		return nil
	case *BagOf:
		bag, ok := v.(value.Bag)
		if !ok {
			return fmt.Errorf("types: %s: expected bag, found %s", path, v.Kind())
		}
		for i, e := range bag {
			if err := validateAt(e, x.Elem, fmt.Sprintf("%s{{%d}}", path, i)); err != nil {
				return err
			}
		}
		return nil
	case *Struct:
		tup, ok := v.(*value.Tuple)
		if !ok {
			return fmt.Errorf("types: %s: expected tuple, found %s", path, v.Kind())
		}
		declared := make(map[string]bool, len(x.Fields))
		for _, f := range x.Fields {
			declared[f.Name] = true
			av, present := tup.Get(f.Name)
			if !present {
				if f.Optional {
					continue
				}
				return fmt.Errorf("types: %s: required attribute %q is missing", path, f.Name)
			}
			if f.Optional && av.Kind() == value.KindNull {
				continue
			}
			if err := validateAt(av, f.Type, path+"."+f.Name); err != nil {
				return err
			}
		}
		if !x.Open {
			for _, f := range tup.Fields() {
				if !declared[f.Name] {
					return fmt.Errorf("types: %s: undeclared attribute %q in closed struct", path, f.Name)
				}
			}
		}
		return nil
	}
	return fmt.Errorf("types: %s: unknown type %T", path, t)
}

// Infer derives a type from a value: the self-describing data's own
// schema. Collections unify their element types; attributes present in
// only some tuples come out Optional; conflicting attribute types come
// out as unions.
func Infer(v value.Value) Type {
	switch x := v.(type) {
	case value.Bool:
		return BoolType
	case value.Int:
		return IntType
	case value.Float:
		return FloatType
	case value.String:
		return StringType
	case value.Bytes:
		return BytesType
	case value.Array:
		return &ArrayOf{Elem: inferElems(x)}
	case value.Bag:
		return &BagOf{Elem: inferElems(x)}
	case *value.Tuple:
		s := &Struct{}
		for _, f := range x.Fields() {
			s.Fields = append(s.Fields, Field{Name: f.Name, Type: Infer(f.Value)})
		}
		return s
	default:
		if v.Kind() == value.KindNull {
			return NullType
		}
		return Any
	}
}

func inferElems(elems []value.Value) Type {
	if len(elems) == 0 {
		return Any
	}
	t := Infer(elems[0])
	for _, e := range elems[1:] {
		t = Unify(t, Infer(e))
	}
	return t
}

// Unify computes the least common type of a and b: equal types unify to
// themselves, structs merge field-wise (missing fields become Optional,
// conflicting field types become unions), collections unify element
// types, and anything else becomes a union.
func Unify(a, b Type) Type {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.String() == b.String() {
		return a
	}
	if pa, ok := a.(Primitive); ok && pa == Any {
		return b
	}
	if pb, ok := b.(Primitive); ok && pb == Any {
		return a
	}
	if sa, ok := a.(*Struct); ok {
		if sb, ok := b.(*Struct); ok {
			return unifyStructs(sa, sb)
		}
	}
	if aa, ok := a.(*ArrayOf); ok {
		if ab, ok := b.(*ArrayOf); ok {
			return &ArrayOf{Elem: Unify(aa.Elem, ab.Elem)}
		}
	}
	if ba, ok := a.(*BagOf); ok {
		if bb, ok := b.(*BagOf); ok {
			return &BagOf{Elem: Unify(ba.Elem, bb.Elem)}
		}
	}
	// Numeric widening keeps INT ∪ DOUBLE as DOUBLE rather than a union.
	if isNumeric(a) && isNumeric(b) {
		return FloatType
	}
	return mkUnion(a, b)
}

func isNumeric(t Type) bool {
	p, ok := t.(Primitive)
	return ok && (p == IntType || p == FloatType)
}

func unifyStructs(a, b *Struct) *Struct {
	out := &Struct{Open: a.Open || b.Open}
	seen := map[string]bool{}
	for _, f := range a.Fields {
		seen[f.Name] = true
		if g, ok := b.Attr(f.Name); ok {
			out.Fields = append(out.Fields, Field{
				Name:     f.Name,
				Type:     Unify(f.Type, g.Type),
				Optional: f.Optional || g.Optional,
			})
		} else {
			out.Fields = append(out.Fields, Field{Name: f.Name, Type: f.Type, Optional: true})
		}
	}
	for _, g := range b.Fields {
		if !seen[g.Name] {
			out.Fields = append(out.Fields, Field{Name: g.Name, Type: g.Type, Optional: true})
		}
	}
	return out
}

// mkUnion builds a flattened, deduplicated union.
func mkUnion(ts ...Type) Type {
	var members []Type
	var add func(t Type)
	seen := map[string]bool{}
	add = func(t Type) {
		if u, ok := t.(*Union); ok {
			for _, m := range u.Members {
				add(m)
			}
			return
		}
		key := t.String()
		if !seen[key] {
			seen[key] = true
			members = append(members, t)
		}
	}
	for _, t := range ts {
		add(t)
	}
	if len(members) == 1 {
		return members[0]
	}
	sort.Slice(members, func(i, j int) bool { return members[i].String() < members[j].String() })
	return &Union{Members: members}
}
