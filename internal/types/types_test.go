package types

import (
	"strings"
	"testing"

	"sqlpp/internal/sion"
	"sqlpp/internal/value"
)

func TestPrimitiveMatching(t *testing.T) {
	cases := []struct {
		typ  Type
		v    string
		want bool
	}{
		{BoolType, "true", true},
		{BoolType, "1", false},
		{IntType, "1", true},
		{IntType, "1.5", false},
		{FloatType, "1.5", true},
		{FloatType, "1", true}, // ints satisfy DOUBLE
		{StringType, "'x'", true},
		{BytesType, "x'00'", true},
		{NullType, "null", true},
		{NullType, "1", false},
		{Any, "{'a': 1}", true},
	}
	for _, c := range cases {
		if got := c.typ.Matches(sion.MustParse(c.v)); got != c.want {
			t.Errorf("%s.Matches(%s) = %v, want %v", c.typ, c.v, got, c.want)
		}
	}
}

func TestStructMatching(t *testing.T) {
	s := &Struct{Fields: []Field{
		{Name: "id", Type: IntType},
		{Name: "title", Type: StringType, Optional: true},
	}}
	cases := []struct {
		v    string
		want bool
	}{
		{"{'id': 1, 'title': 'x'}", true},
		{"{'id': 1}", true},           // optional attribute absent
		{"{'title': 'x'}", false},     // required attribute missing
		{"{'id': 'x'}", false},        // wrong type
		{"{'id': 1, 'zz': 2}", false}, // closed struct rejects extras
		{"5", false},
	}
	for _, c := range cases {
		if got := s.Matches(sion.MustParse(c.v)); got != c.want {
			t.Errorf("closed struct Matches(%s) = %v, want %v", c.v, got, c.want)
		}
	}
	open := &Struct{Fields: s.Fields, Open: true}
	if !open.Matches(sion.MustParse("{'id': 1, 'zz': 2}")) {
		t.Error("open struct should tolerate extra attributes")
	}
}

func TestUnionMatching(t *testing.T) {
	u := &Union{Members: []Type{StringType, &ArrayOf{Elem: StringType}}}
	if !u.Matches(sion.MustParse("'x'")) || !u.Matches(sion.MustParse("['a', 'b']")) {
		t.Error("union should match both member shapes")
	}
	if u.Matches(sion.MustParse("[1]")) {
		t.Error("array of ints should not match ARRAY<STRING>")
	}
}

func TestValidateErrors(t *testing.T) {
	typ, err := ParseType("BAG<STRUCT<id: INT, xs: ARRAY<INT>>>")
	if err != nil {
		t.Fatal(err)
	}
	good := sion.MustParse("{{ {'id': 1, 'xs': [1, 2]} }}")
	if err := Validate(good, typ); err != nil {
		t.Errorf("good value rejected: %v", err)
	}
	bad := sion.MustParse("{{ {'id': 1, 'xs': [1, 'two']} }}")
	err = Validate(bad, typ)
	if err == nil {
		t.Fatal("bad value accepted")
	}
	if !strings.Contains(err.Error(), ".xs[1]") {
		t.Errorf("error should cite the path, got %v", err)
	}
}

func TestInfer(t *testing.T) {
	v := sion.MustParse(`{{
	  {'id': 1, 'name': 'a', 'tags': ['x']},
	  {'id': 2, 'extra': true}
	}}`)
	typ := Infer(v)
	bag, ok := typ.(*BagOf)
	if !ok {
		t.Fatalf("inferred %T", typ)
	}
	st, ok := bag.Elem.(*Struct)
	if !ok {
		t.Fatalf("element %T", bag.Elem)
	}
	byName := map[string]Field{}
	for _, f := range st.Fields {
		byName[f.Name] = f
	}
	if byName["id"].Optional || byName["id"].Type.String() != "INT" {
		t.Errorf("id field = %+v", byName["id"])
	}
	if !byName["name"].Optional || !byName["extra"].Optional {
		t.Error("attributes present in only some tuples must be optional")
	}
	// The inferred type always validates its own source data.
	if err := Validate(v, typ); err != nil {
		t.Errorf("inferred type rejects its source: %v", err)
	}
}

func TestInferHeterogeneousAttr(t *testing.T) {
	v := sion.MustParse(`{{ {'x': 1}, {'x': 'one'} }}`)
	typ := Infer(v)
	if !strings.Contains(typ.String(), "UNIONTYPE") {
		t.Errorf("conflicting attribute types should infer a union: %s", typ)
	}
	if err := Validate(v, typ); err != nil {
		t.Errorf("inferred union rejects source: %v", err)
	}
}

func TestUnifyNumericWidening(t *testing.T) {
	if got := Unify(IntType, FloatType); got != FloatType {
		t.Errorf("INT ∪ DOUBLE = %s, want DOUBLE", got)
	}
	if got := Unify(IntType, IntType); got != IntType {
		t.Errorf("INT ∪ INT = %s", got)
	}
	u := Unify(IntType, StringType)
	if !strings.Contains(u.String(), "UNIONTYPE") {
		t.Errorf("INT ∪ STRING = %s", u)
	}
	// Unions flatten and dedupe.
	uu := Unify(u, StringType)
	if strings.Count(uu.String(), "STRING") != 1 {
		t.Errorf("union should dedupe: %s", uu)
	}
}

func TestParseCreateTable(t *testing.T) {
	// The paper's Listing 5.
	name, typ, err := ParseCreateTable(`CREATE TABLE emp_mixed (
	  id INT,
	  name STRING,
	  title STRING,
	  projects UNIONTYPE<STRING, ARRAY<STRING>>
	);`)
	if err != nil {
		t.Fatal(err)
	}
	if name != "emp_mixed" {
		t.Errorf("name = %q", name)
	}
	bag, ok := typ.(*BagOf)
	if !ok {
		t.Fatalf("type = %T", typ)
	}
	st := bag.Elem.(*Struct)
	if len(st.Fields) != 4 {
		t.Fatalf("fields = %d", len(st.Fields))
	}
	if !strings.Contains(st.Fields[3].Type.String(), "UNIONTYPE") {
		t.Errorf("projects type = %s", st.Fields[3].Type)
	}
	// Data in either shape validates.
	data := sion.MustParse(`{{
	  {'id': 1, 'name': 'a', 'title': 't', 'projects': 'P'},
	  {'id': 2, 'name': 'b', 'title': 't', 'projects': ['P', 'Q']}
	}}`)
	if err := Validate(data, typ); err != nil {
		t.Errorf("Listing 5 data rejected: %v", err)
	}
}

func TestParseCreateTableVariants(t *testing.T) {
	// Dotted names, optional columns, nested structs, length suffixes.
	name, typ, err := ParseCreateTable(`CREATE TABLE hr.emp (
	  id BIGINT,
	  name VARCHAR(64),
	  title STRING?,
	  addr STRUCT<city: STRING, zip: INT?>,
	  tags BAG<STRING>
	)`)
	if err != nil {
		t.Fatal(err)
	}
	if name != "hr.emp" {
		t.Errorf("name = %q", name)
	}
	st := typ.(*BagOf).Elem.(*Struct)
	if !st.Fields[2].Optional {
		t.Error("title should be optional")
	}
	inner := st.Fields[3].Type.(*Struct)
	if !inner.Fields[1].Optional {
		t.Error("zip should be optional")
	}
}

func TestParseCreateTableErrors(t *testing.T) {
	cases := []string{
		"",
		"CREATE VIEW x (a INT)",
		"CREATE TABLE (a INT)",
		"CREATE TABLE t a INT",
		"CREATE TABLE t (a)",
		"CREATE TABLE t (a FROB)",
		"CREATE TABLE t (a ARRAY<INT)",
		"CREATE TABLE t (a INT) trailing",
	}
	for _, src := range cases {
		if _, _, err := ParseCreateTable(src); err == nil {
			t.Errorf("ParseCreateTable(%q) should fail", src)
		}
	}
}

func TestSchemaOracle(t *testing.T) {
	s := NewSchema()
	if _, err := s.DeclareDDL("CREATE TABLE t (a INT, b STRING)"); err != nil {
		t.Fatal(err)
	}
	if has, known := s.VarHasAttr("t", "a"); !has || !known {
		t.Error("declared attribute should be known")
	}
	if has, known := s.VarHasAttr("t", "zz"); has || !known {
		t.Error("closed struct definitively lacks zz")
	}
	if _, known := s.VarHasAttr("unknown", "a"); known {
		t.Error("undeclared collection should be unknown")
	}
	// Open structs leave absent attributes unknown.
	s.Declare("open", &BagOf{Elem: &Struct{Fields: []Field{{Name: "a", Type: IntType}}, Open: true}})
	if _, known := s.VarHasAttr("open", "zz"); known {
		t.Error("open struct attribute absence is not known")
	}
}

func TestSchemaCheck(t *testing.T) {
	s := NewSchema()
	if _, err := s.DeclareDDL("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	if err := s.Check("t", sion.MustParse("{{ {'a': 1} }}")); err != nil {
		t.Errorf("conforming value rejected: %v", err)
	}
	if err := s.Check("t", sion.MustParse("{{ {'a': 'x'} }}")); err == nil {
		t.Error("non-conforming value accepted")
	}
	if err := s.Check("undeclared", value.Bag{}); err != nil {
		t.Errorf("undeclared names pass (schema is optional): %v", err)
	}
	if got := s.Names(); len(got) != 1 || got[0] != "t" {
		t.Errorf("Names = %v", got)
	}
}
