package value

import (
	"math/rand"
	"testing"
)

func benchValues(n int) []Value {
	r := rand.New(rand.NewSource(1))
	out := make([]Value, n)
	for i := range out {
		out[i] = genValue(r, 3)
	}
	return out
}

func BenchmarkCompare(b *testing.B) {
	vs := benchValues(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compare(vs[i%256], vs[(i+1)%256])
	}
}

func BenchmarkCompareScalars(b *testing.B) {
	a, c := Int(42), Float(42.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compare(a, c)
	}
}

func BenchmarkKey(b *testing.B) {
	vs := benchValues(256)
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendKey(buf[:0], vs[i%256])
	}
}

func BenchmarkKeyTuple(b *testing.B) {
	t := NewTuple(
		Field{"id", Int(7)},
		Field{"name", String("Bob Smith")},
		Field{"salary", Float(120000)},
	)
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendKey(buf[:0], t)
	}
}

func BenchmarkClone(b *testing.B) {
	vs := benchValues(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Clone(vs[i%64])
	}
}

func BenchmarkEquivalent(b *testing.B) {
	vs := benchValues(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Equivalent(vs[i%64], vs[i%64])
	}
}

func BenchmarkTupleGet(b *testing.B) {
	t := NewTuple(
		Field{"a", Int(1)}, Field{"b", Int(2)}, Field{"c", Int(3)},
		Field{"d", Int(4)}, Field{"e", Int(5)},
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Get("e")
	}
}

func BenchmarkRender(b *testing.B) {
	vs := benchValues(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = vs[i%64].String()
	}
}
