package value

// Clone returns a deep copy of v. Scalars and the absent values are
// immutable and returned as-is; collections and tuples are copied
// recursively so the result shares no mutable state with v.
func Clone(v Value) Value {
	switch x := v.(type) {
	case Bytes:
		out := make(Bytes, len(x))
		copy(out, x)
		return out
	case Array:
		out := make(Array, len(x))
		for i, e := range x {
			out[i] = Clone(e)
		}
		return out
	case Bag:
		out := make(Bag, len(x))
		for i, e := range x {
			out[i] = Clone(e)
		}
		return out
	case *Tuple:
		out := &Tuple{fields: make([]Field, len(x.fields))}
		for i, f := range x.fields {
			out.fields[i] = Field{Name: f.Name, Value: Clone(f.Value)}
		}
		return out
	default:
		return v
	}
}
