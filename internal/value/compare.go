package value

import (
	"bytes"
	"math"
	"sort"
	"strings"
)

// Compare defines the SQL++ total order used by ORDER BY and by the
// canonical sorting of bags. Values of different kinds order by kind:
//
//	MISSING < NULL < booleans < numbers < strings < bytes
//	        < arrays < tuples < bags
//
// with integers and floats compared numerically within the number class.
// Within arrays the order is lexicographic by element; tuples compare by
// their attribute multiset sorted by name; bags compare as sorted
// multisets. NaN sorts before all other floats so the order stays total.
func Compare(a, b Value) int {
	ca, cb := compareClass(a.Kind()), compareClass(b.Kind())
	if ca != cb {
		return cmpInt(ca, cb)
	}
	switch a.Kind() {
	case KindMissing, KindNull:
		return 0
	case KindBool:
		x, _ := a.(Bool)
		var y Bool
		y, _ = b.(Bool)
		switch {
		case bool(x) == bool(y):
			return 0
		case !bool(x):
			return -1
		default:
			return 1
		}
	case KindInt, KindFloat:
		return CompareNumeric(a, b)
	case KindString:
		return strings.Compare(string(a.(String)), string(b.(String)))
	case KindBytes:
		return bytes.Compare([]byte(a.(Bytes)), []byte(b.(Bytes)))
	case KindArray:
		return compareSeq([]Value(a.(Array)), []Value(b.(Array)))
	case KindBag:
		return compareSeq(sortedBag(a.(Bag)), sortedBag(b.(Bag)))
	case KindTuple:
		return compareTuple(a.(*Tuple), b.(*Tuple))
	}
	return 0
}

// compareClass groups kinds into total-order classes so that Int and
// Float share a class.
func compareClass(k Kind) int {
	switch k {
	case KindMissing:
		return 0
	case KindNull:
		return 1
	case KindBool:
		return 2
	case KindInt, KindFloat:
		return 3
	case KindString:
		return 4
	case KindBytes:
		return 5
	case KindArray:
		return 6
	case KindTuple:
		return 7
	case KindBag:
		return 8
	}
	return 9
}

// CompareNumeric compares two numeric values (Int or Float) numerically.
// It is exact for int/int, float/float, and mixed comparisons where the
// integer is representable; very large integers compare via big-value
// logic on the float side. NaN compares less than every non-NaN.
func CompareNumeric(a, b Value) int {
	ai, aIsInt := a.(Int)
	bi, bIsInt := b.(Int)
	if aIsInt && bIsInt {
		return cmpInt(int64(ai), int64(bi))
	}
	af, _ := AsFloat(a)
	bf, _ := AsFloat(b)
	aNaN, bNaN := math.IsNaN(af), math.IsNaN(bf)
	switch {
	case aNaN && bNaN:
		return 0
	case aNaN:
		return -1
	case bNaN:
		return 1
	}
	// Mixed int/float comparison must avoid precision loss for |int|>2^53.
	if aIsInt {
		return cmpIntFloat(int64(ai), bf)
	}
	if bIsInt {
		return -cmpIntFloat(int64(bi), af)
	}
	switch {
	case af < bf:
		return -1
	case af > bf:
		return 1
	default:
		return 0
	}
}

// cmpIntFloat compares an exact int64 with a float64 without losing
// precision for integers beyond 2^53.
func cmpIntFloat(i int64, f float64) int {
	if math.IsInf(f, 1) {
		return -1
	}
	if math.IsInf(f, -1) {
		return 1
	}
	// If f is outside int64 range the sign decides.
	if f >= 9.223372036854776e18 {
		return -1
	}
	if f < -9.223372036854776e18 {
		return 1
	}
	trunc := math.Trunc(f)
	ti := int64(trunc)
	if c := cmpInt(i, ti); c != 0 {
		return c
	}
	frac := f - trunc
	switch {
	case frac > 0:
		return -1
	case frac < 0:
		return 1
	default:
		return 0
	}
}

func cmpInt[T int | int64](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func compareSeq(a, b []Value) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return cmpInt(len(a), len(b))
}

// sortedBag returns the bag's elements in total order (a fresh slice).
func sortedBag(b Bag) []Value {
	s := make([]Value, len(b))
	copy(s, b)
	sort.SliceStable(s, func(i, j int) bool { return Compare(s[i], s[j]) < 0 })
	return s
}

// compareTuple compares tuples by their (name, value) pairs sorted by
// name then value, so attribute order is irrelevant, matching the
// unordered-tuple data model.
func compareTuple(a, b *Tuple) int {
	fa, fb := sortedFields(a), sortedFields(b)
	n := min(len(fa), len(fb))
	for i := 0; i < n; i++ {
		if c := strings.Compare(fa[i].Name, fb[i].Name); c != 0 {
			return c
		}
		if c := Compare(fa[i].Value, fb[i].Value); c != 0 {
			return c
		}
	}
	return cmpInt(len(fa), len(fb))
}

func sortedFields(t *Tuple) []Field {
	fs := make([]Field, len(t.fields))
	copy(fs, t.fields)
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Name != fs[j].Name {
			return fs[i].Name < fs[j].Name
		}
		return Compare(fs[i].Value, fs[j].Value) < 0
	})
	return fs
}
