package value

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genValue produces a random SQL++ value of bounded depth for property
// tests.
func genValue(r *rand.Rand, depth int) Value {
	max := 10
	if depth <= 0 {
		max = 7 // scalars only
	}
	switch r.Intn(max) {
	case 0:
		return Missing
	case 1:
		return Null
	case 2:
		return Bool(r.Intn(2) == 0)
	case 3:
		return Int(r.Int63n(2000) - 1000)
	case 4:
		return Float(r.NormFloat64() * 100)
	case 5:
		const letters = "abcde'δ"
		n := r.Intn(6)
		out := make([]rune, n)
		for i := range out {
			out[i] = []rune(letters)[r.Intn(7)]
		}
		return String(out)
	case 6:
		b := make(Bytes, r.Intn(4))
		r.Read(b)
		return b
	case 7:
		n := r.Intn(4)
		out := make(Array, n)
		for i := range out {
			out[i] = genValue(r, depth-1)
		}
		return out
	case 8:
		n := r.Intn(4)
		out := make(Bag, n)
		for i := range out {
			out[i] = genValue(r, depth-1)
		}
		return out
	default:
		t := EmptyTuple()
		for i, n := 0, r.Intn(4); i < n; i++ {
			t.Put(string(rune('a'+r.Intn(4))), nonMissing(r, depth-1))
		}
		return t
	}
}

func nonMissing(r *rand.Rand, depth int) Value {
	for {
		v := genValue(r, depth)
		if v.Kind() != KindMissing {
			return v
		}
	}
}

// genWrap adapts genValue to testing/quick.
type genWrap struct{ V Value }

func (genWrap) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(genWrap{V: genValue(r, 3)})
}

func TestCompareKindOrder(t *testing.T) {
	ordered := []Value{
		Missing, Null, False, True, Int(-5), Float(0.5), Int(1),
		String(""), String("a"), Bytes{0}, Array{}, Array{Int(1)},
		EmptyTuple(), Bag{},
	}
	for i := range ordered {
		for j := range ordered {
			got := Compare(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if sign(got) != want {
				t.Errorf("Compare(%v, %v) = %d, want sign %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestCompareNumericMixed(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Float(1.0), 0},
		{Int(1), Float(1.5), -1},
		{Float(2.5), Int(2), 1},
		{Int(math.MaxInt64), Float(math.MaxFloat64), -1},
		{Float(math.Inf(1)), Int(math.MaxInt64), 1},
		{Float(math.Inf(-1)), Int(math.MinInt64), -1},
		{Float(math.NaN()), Float(0), -1},
		{Float(math.NaN()), Float(math.NaN()), 0},
		// Precision: 2^53+1 is not representable as float64.
		{Int(1<<53 + 1), Float(1 << 53), 1},
	}
	for _, c := range cases {
		if got := sign(CompareNumeric(c.a, c.b)); got != c.want {
			t.Errorf("CompareNumeric(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareBagsOrderInsensitive(t *testing.T) {
	a := Bag{Int(1), Int(2), Int(3)}
	b := Bag{Int(3), Int(1), Int(2)}
	if Compare(a, b) != 0 {
		t.Error("bags compare as sorted multisets")
	}
	c := Bag{Int(1), Int(2)}
	if Compare(a, c) <= 0 {
		t.Error("longer bag with equal prefix compares greater")
	}
}

func TestCompareTuplesAttrOrderInsensitive(t *testing.T) {
	a := NewTuple(Field{"x", Int(1)}, Field{"y", Int(2)})
	b := NewTuple(Field{"y", Int(2)}, Field{"x", Int(1)})
	if Compare(a, b) != 0 {
		t.Error("tuples are unordered: attribute order must not matter")
	}
	c := NewTuple(Field{"x", Int(1)}, Field{"y", Int(3)})
	if Compare(a, c) >= 0 {
		t.Error("tuple with smaller y should compare less")
	}
}

func TestCompareArraysLexicographic(t *testing.T) {
	if Compare(Array{Int(1), Int(2)}, Array{Int(1), Int(3)}) >= 0 {
		t.Error("lexicographic element order")
	}
	if Compare(Array{Int(1)}, Array{Int(1), Int(0)}) >= 0 {
		t.Error("prefix compares less")
	}
}

// Property: Compare is reflexive, antisymmetric, and agrees with Key
// equality.
func TestCompareProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	reflexive := func(w genWrap) bool { return Compare(w.V, w.V) == 0 }
	if err := quick.Check(reflexive, cfg); err != nil {
		t.Error("reflexivity:", err)
	}
	antisym := func(a, b genWrap) bool {
		return sign(Compare(a.V, b.V)) == -sign(Compare(b.V, a.V))
	}
	if err := quick.Check(antisym, cfg); err != nil {
		t.Error("antisymmetry:", err)
	}
	keyAgrees := func(a, b genWrap) bool {
		// Equal canonical keys must mean Compare == 0. (The converse
		// does not hold: NULL and MISSING compare equal within their
		// class but key separately.)
		if Key(a.V) == Key(b.V) {
			return Compare(a.V, b.V) == 0
		}
		return true
	}
	if err := quick.Check(keyAgrees, cfg); err != nil {
		t.Error("key agreement:", err)
	}
}

// Property: transitivity of the total order on random triples.
func TestCompareTransitivity(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		a, b, c := genValue(r, 2), genValue(r, 2), genValue(r, 2)
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			t.Fatalf("transitivity violated: %v <= %v <= %v but a > c", a, b, c)
		}
	}
}

func TestSortValues(t *testing.T) {
	vs := []Value{String("b"), Int(2), Null, True, Float(1.5)}
	SortValues(vs)
	want := []Value{Null, True, Float(1.5), Int(2), String("b")}
	for i := range want {
		if Compare(vs[i], want[i]) != 0 {
			t.Fatalf("sorted[%d] = %v, want %v", i, vs[i], want[i])
		}
	}
}
