package value

// DeepEqual reports structural equality, sensitive to element order in
// both arrays and bags and to attribute order in tuples. It is the
// cheapest equality and is what the executor uses when it already
// controls ordering.
func DeepEqual(a, b Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch x := a.(type) {
	case missingType, nullType:
		return true
	case Bool:
		return x == b.(Bool)
	case Int:
		return x == b.(Int)
	case Float:
		return x == b.(Float)
	case String:
		return x == b.(String)
	case Bytes:
		y := b.(Bytes)
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	case Array:
		return deepEqualSeq(x, []Value(b.(Array)))
	case Bag:
		return deepEqualSeq(x, []Value(b.(Bag)))
	case *Tuple:
		y := b.(*Tuple)
		if len(x.fields) != len(y.fields) {
			return false
		}
		for i := range x.fields {
			if x.fields[i].Name != y.fields[i].Name ||
				!DeepEqual(x.fields[i].Value, y.fields[i].Value) {
				return false
			}
		}
		return true
	}
	return false
}

func deepEqualSeq(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// Equivalent reports data-model equality: bags compare as multisets,
// tuples compare as multisets of (name, value) attributes, numbers compare
// numerically across Int/Float, and arrays stay order-sensitive. This is
// the equality the compatibility kit uses to diff query results against
// expected listings.
func Equivalent(a, b Value) bool {
	return Key(a) == Key(b)
}

// ContainsEquivalent reports whether collection c (array or bag) contains
// an element equivalent to v.
func ContainsEquivalent(c []Value, v Value) bool {
	k := Key(v)
	for _, e := range c {
		if Key(e) == k {
			return true
		}
	}
	return false
}
