package value

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDeepEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Missing, Missing, true},
		{Null, Null, true},
		{Missing, Null, false},
		{Int(1), Int(1), true},
		{Int(1), Float(1), false}, // DeepEqual is kind-strict
		{String("a"), String("a"), true},
		{Bytes{1, 2}, Bytes{1, 2}, true},
		{Bytes{1, 2}, Bytes{1, 3}, false},
		{Array{Int(1), Int(2)}, Array{Int(1), Int(2)}, true},
		{Array{Int(1), Int(2)}, Array{Int(2), Int(1)}, false}, // order-sensitive
		{Bag{Int(1), Int(2)}, Bag{Int(2), Int(1)}, false},     // DeepEqual keeps bag order
		{
			NewTuple(Field{"a", Int(1)}, Field{"b", Int(2)}),
			NewTuple(Field{"a", Int(1)}, Field{"b", Int(2)}),
			true,
		},
		{
			NewTuple(Field{"a", Int(1)}, Field{"b", Int(2)}),
			NewTuple(Field{"b", Int(2)}, Field{"a", Int(1)}),
			false, // DeepEqual keeps attribute order
		},
	}
	for _, c := range cases {
		if got := DeepEqual(c.a, c.b); got != c.want {
			t.Errorf("DeepEqual(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEquivalent(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Float(1.0), true}, // numeric equivalence
		{Int(1), Float(1.5), false},
		{Bag{Int(1), Int(2)}, Bag{Int(2), Int(1)}, true}, // bags are multisets
		{Bag{Int(1), Int(1)}, Bag{Int(1)}, false},        // multiplicities matter
		{Array{Int(1), Int(2)}, Array{Int(2), Int(1)}, false},
		{
			NewTuple(Field{"a", Int(1)}, Field{"b", Int(2)}),
			NewTuple(Field{"b", Int(2)}, Field{"a", Int(1)}),
			true, // tuples are unordered
		},
		{Null, Missing, false}, // the two absent values stay distinct
		{
			Bag{NewTuple(Field{"x", Bag{Int(1), Int(2)}})},
			Bag{NewTuple(Field{"x", Bag{Int(2), Int(1)}})},
			true, // nested bags too
		},
	}
	for _, c := range cases {
		if got := Equivalent(c.a, c.b); got != c.want {
			t.Errorf("Equivalent(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestContainsEquivalent(t *testing.T) {
	c := []Value{Int(1), String("x")}
	if !ContainsEquivalent(c, Float(1.0)) {
		t.Error("1.0 should be found via numeric equivalence")
	}
	if ContainsEquivalent(c, String("y")) {
		t.Error("'y' should not be found")
	}
}

// Property: DeepEqual implies Equivalent.
func TestDeepEqualImpliesEquivalent(t *testing.T) {
	f := func(a, b genWrap) bool {
		if DeepEqual(a.V, b.V) {
			return Equivalent(a.V, b.V)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// And every value is DeepEqual (hence Equivalent) to itself.
	self := func(a genWrap) bool { return DeepEqual(a.V, a.V) && Equivalent(a.V, a.V) }
	if err := quick.Check(self, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	orig := Bag{
		NewTuple(Field{"a", Array{Int(1), Int(2)}}, Field{"b", Bytes{9}}),
	}
	cl := Clone(orig).(Bag)
	if !DeepEqual(orig, cl) {
		t.Fatal("clone must be deep-equal")
	}
	// Mutate the clone; the original must not change.
	clTup := cl[0].(*Tuple)
	clTup.Set("a", Int(99))
	arr, _ := orig[0].(*Tuple).Get("a")
	if arr.Kind() != KindArray {
		t.Error("mutating clone leaked into original tuple")
	}
	clBytes, _ := clTup.Get("b")
	clBytes.(Bytes)[0] = 7
	origBytes, _ := orig[0].(*Tuple).Get("b")
	if origBytes.(Bytes)[0] != 9 {
		t.Error("mutating cloned bytes leaked into original")
	}
}

// Property: Clone is always deep-equal and never shares mutable state at
// the top level.
func TestCloneProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		v := genValue(r, 3)
		if !DeepEqual(v, Clone(v)) {
			t.Fatalf("clone of %v not deep-equal", v)
		}
	}
}

func TestKeyNumericNormalization(t *testing.T) {
	if Key(Int(1)) != Key(Float(1.0)) {
		t.Error("1 and 1.0 must share a grouping key")
	}
	if Key(Int(1)) == Key(Float(1.5)) {
		t.Error("1 and 1.5 must not share a key")
	}
	if Key(Null) == Key(Missing) {
		t.Error("NULL and MISSING group separately")
	}
	// Very large integers beyond float precision keep exact keys.
	if Key(Int(1<<53+1)) == Key(Int(1<<53)) {
		t.Error("distinct large ints must not collide")
	}
}
