package value

import (
	"encoding/binary"
	"math"
	"sort"
)

// AppendKey appends a canonical byte encoding of v to dst and returns the
// extended slice. Two values receive the same encoding exactly when they
// are equal under SQL++ grouping equality: numbers compare numerically
// across Int/Float (1 and 1.0 group together), bags are order-insensitive,
// tuples are attribute-order-insensitive, and NULL and MISSING each form
// their own grouping class. The encoding is self-delimiting, so it is safe
// to use as a map key for GROUP BY and DISTINCT.
func AppendKey(dst []byte, v Value) []byte {
	switch x := v.(type) {
	case missingType:
		return append(dst, 'M')
	case nullType:
		return append(dst, 'N')
	case Bool:
		if x {
			return append(dst, 'b', 1)
		}
		return append(dst, 'b', 0)
	case Int:
		return appendNumericKey(dst, v)
	case Float:
		return appendNumericKey(dst, v)
	case String:
		dst = append(dst, 's')
		dst = appendLen(dst, len(x))
		return append(dst, x...)
	case Bytes:
		dst = append(dst, 'y')
		dst = appendLen(dst, len(x))
		return append(dst, x...)
	case Array:
		dst = append(dst, 'a')
		dst = appendLen(dst, len(x))
		for _, e := range x {
			dst = AppendKey(dst, e)
		}
		return dst
	case Bag:
		dst = append(dst, 'g')
		dst = appendLen(dst, len(x))
		for _, e := range sortedBag(x) {
			dst = AppendKey(dst, e)
		}
		return dst
	case *Tuple:
		dst = append(dst, 't')
		fs := sortedFields(x)
		dst = appendLen(dst, len(fs))
		for _, f := range fs {
			dst = appendLen(dst, len(f.Name))
			dst = append(dst, f.Name...)
			dst = AppendKey(dst, f.Value)
		}
		return dst
	}
	panic("value: AppendKey on unknown Value type")
}

// Key returns AppendKey(nil, v) as a string, suitable as a Go map key.
func Key(v Value) string { return string(AppendKey(nil, v)) }

// appendNumericKey encodes Int and Float so that numerically equal values
// encode identically. Integral floats within int64 range encode as the
// integer; everything else encodes as ordered IEEE-754 bits.
func appendNumericKey(dst []byte, v Value) []byte {
	if i, ok := AsInt(v); ok {
		dst = append(dst, 'i')
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(i))
		return append(dst, buf[:]...)
	}
	f, _ := AsFloat(v)
	if math.IsNaN(f) {
		return append(dst, 'q') // all NaNs group together
	}
	dst = append(dst, 'f')
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], math.Float64bits(f))
	return append(dst, buf[:]...)
}

func appendLen(dst []byte, n int) []byte {
	var buf [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(buf[:], uint64(n))
	return append(dst, buf[:k]...)
}

// SortValues sorts vs in place by the SQL++ total order.
func SortValues(vs []Value) {
	sort.SliceStable(vs, func(i, j int) bool { return Compare(vs[i], vs[j]) < 0 })
}
