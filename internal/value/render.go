package value

import (
	"math"
	"strconv"
	"strings"
)

// String renders the value in the paper's object notation.
func (missingType) String() string { return "MISSING" }

// String renders the value in the paper's object notation.
func (nullType) String() string { return "null" }

// String renders the value in the paper's object notation.
func (b Bool) String() string {
	if b {
		return "true"
	}
	return "false"
}

// String renders the value in the paper's object notation.
func (i Int) String() string { return strconv.FormatInt(int64(i), 10) }

// String renders the value in the paper's object notation. Integral
// floats keep a trailing ".0" so the rendering round-trips kind.
func (f Float) String() string {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// String renders the value in the paper's object notation: single quotes,
// with embedded single quotes doubled, as in SQL literals.
func (s String) String() string {
	return "'" + strings.ReplaceAll(string(s), "'", "''") + "'"
}

// String renders the value as a hexadecimal blob literal.
func (b Bytes) String() string {
	const hex = "0123456789abcdef"
	var sb strings.Builder
	sb.WriteString("x'")
	for _, c := range b {
		sb.WriteByte(hex[c>>4])
		sb.WriteByte(hex[c&0xf])
	}
	sb.WriteString("'")
	return sb.String()
}

// String renders the array in the paper's object notation.
func (a Array) String() string { return renderSeq(a, "[", "]") }

// String renders the bag in the paper's object notation.
func (b Bag) String() string { return renderSeq(b, "{{", "}}") }

// String renders the tuple in the paper's object notation.
func (t *Tuple) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, f := range t.fields {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(String(f.Name).String())
		sb.WriteString(": ")
		sb.WriteString(f.Value.String())
	}
	sb.WriteByte('}')
	return sb.String()
}

func renderSeq(vs []Value, open, close string) string {
	var sb strings.Builder
	sb.WriteString(open)
	for i, v := range vs {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.String())
	}
	sb.WriteString(close)
	return sb.String()
}

// Pretty renders v with newline indentation, two spaces per level, in the
// same object notation as String. Useful for diffs and the CLI.
func Pretty(v Value) string {
	var sb strings.Builder
	pretty(&sb, v, 0)
	return sb.String()
}

func pretty(sb *strings.Builder, v Value, depth int) {
	indent := strings.Repeat("  ", depth)
	child := strings.Repeat("  ", depth+1)
	switch x := v.(type) {
	case Array:
		prettySeq(sb, x, "[", "]", indent, child, depth)
	case Bag:
		prettySeq(sb, x, "{{", "}}", indent, child, depth)
	case *Tuple:
		if len(x.fields) == 0 {
			sb.WriteString("{}")
			return
		}
		sb.WriteString("{\n")
		for i, f := range x.fields {
			sb.WriteString(child)
			sb.WriteString(String(f.Name).String())
			sb.WriteString(": ")
			pretty(sb, f.Value, depth+1)
			if i < len(x.fields)-1 {
				sb.WriteByte(',')
			}
			sb.WriteByte('\n')
		}
		sb.WriteString(indent)
		sb.WriteByte('}')
	default:
		sb.WriteString(v.String())
	}
}

func prettySeq(sb *strings.Builder, vs []Value, open, close, indent, child string, depth int) {
	if len(vs) == 0 {
		sb.WriteString(open)
		sb.WriteString(close)
		return
	}
	sb.WriteString(open)
	sb.WriteByte('\n')
	for i, v := range vs {
		sb.WriteString(child)
		pretty(sb, v, depth+1)
		if i < len(vs)-1 {
			sb.WriteByte(',')
		}
		sb.WriteByte('\n')
	}
	sb.WriteString(indent)
	sb.WriteString(close)
}
