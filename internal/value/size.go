package value

// ApproxSize estimates the in-memory footprint of v in bytes: header
// costs per value plus string/collection payloads, recursively. It is
// an estimate for resource governance, not an exact accounting — the
// goal is that a budget expressed in bytes degrades predictably with
// the real heap pressure of materialized state (hash-join builds,
// GROUP BY content, ORDER BY buffers), not that it matches the
// allocator byte for byte.
func ApproxSize(v Value) int64 {
	const (
		header    = 16 // interface header
		sliceHdr  = 24
		tupleBase = 48
	)
	switch x := v.(type) {
	case nil:
		return 0
	case String:
		return header + int64(len(x))
	case Bytes:
		return header + int64(len(x))
	case Array:
		s := int64(sliceHdr)
		for _, e := range x {
			s += ApproxSize(e)
		}
		return s
	case Bag:
		s := int64(sliceHdr)
		for _, e := range x {
			s += ApproxSize(e)
		}
		return s
	case *Tuple:
		s := int64(tupleBase)
		for _, f := range x.Fields() {
			s += header + int64(len(f.Name)) + ApproxSize(f.Value)
		}
		return s
	default:
		// Bool, Int, Float, Missing, Null: one boxed word.
		return header
	}
}
