package value

import (
	"strings"
	"testing"
)

func TestApproxSizeScalars(t *testing.T) {
	for _, v := range []Value{Null, Missing, Bool(true), Int(7), Float(1.5)} {
		if s := ApproxSize(v); s <= 0 {
			t.Errorf("%s: non-positive size %d", v, s)
		}
	}
}

func TestApproxSizeGrowsWithContent(t *testing.T) {
	short := ApproxSize(String("ab"))
	long := ApproxSize(String(strings.Repeat("ab", 500)))
	if long <= short {
		t.Errorf("string size must grow with length: %d vs %d", short, long)
	}

	small := ApproxSize(Array{Int(1)})
	big := ApproxSize(Array{Int(1), Int(2), Int(3), Int(4)})
	if big <= small {
		t.Errorf("array size must grow with elements: %d vs %d", small, big)
	}

	flat := EmptyTuple()
	flat.Put("a", Int(1))
	nested := EmptyTuple()
	nested.Put("a", Int(1))
	nested.Put("b", Array{String("xxxxxxxxxxxxxxxx"), Bag{Int(1), Int(2)}})
	if ApproxSize(nested) <= ApproxSize(flat) {
		t.Error("nested tuple must be bigger than a flat one")
	}
}
