// Package value implements the SQL++ data model.
//
// A SQL++ value is absent (MISSING), null, a scalar (boolean, integer,
// float, string, or bytes), a tuple of named attributes, or a collection
// (an ordered array or an unordered bag) of arbitrary values. Unlike the
// SQL data model, collections need not be homogeneous, tuples may nest
// arbitrarily, and two distinct absent values exist: NULL (present but
// unknown) and MISSING (not present at all).
//
// The package is nil-free by construction: every SQL++ value, including
// the two absent values, is a non-nil Value. Code that receives a Go nil
// where a Value is expected is in error, and the constructors here never
// produce one.
package value

import "math"

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The kinds, in SQL++ total-order position (see Compare).
const (
	KindMissing Kind = iota
	KindNull
	KindBool
	KindInt
	KindFloat
	KindString
	KindBytes
	KindArray
	KindTuple
	KindBag
)

var kindNames = [...]string{
	KindMissing: "missing",
	KindNull:    "null",
	KindBool:    "boolean",
	KindInt:     "integer",
	KindFloat:   "float",
	KindString:  "string",
	KindBytes:   "bytes",
	KindArray:   "array",
	KindTuple:   "tuple",
	KindBag:     "bag",
}

// String returns the lower-case SQL++ name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "invalid"
}

// Value is a SQL++ value. Implementations are exactly the types declared
// in this package; user code should treat the set as closed.
type Value interface {
	// Kind reports the dynamic type of the value.
	Kind() Kind
	// String renders the value in the paper's object notation
	// (single-quoted strings, {{ }} bags). It is meant for diagnostics
	// and tests; use package datafmt for interchange formats.
	String() string
}

type missingType struct{}
type nullType struct{}

// Missing is the SQL++ MISSING value: the result of navigation that binds
// to nothing, or of a mistyped operation in permissive mode. It can never
// appear as an attribute value inside a constructed tuple.
var Missing Value = missingType{}

// Null is the SQL++ (and SQL) NULL value.
var Null Value = nullType{}

func (missingType) Kind() Kind { return KindMissing }
func (nullType) Kind() Kind    { return KindNull }

// Bool is a SQL++ boolean scalar.
type Bool bool

// True and False are the boolean scalars.
var (
	True  = Bool(true)
	False = Bool(false)
)

// Kind reports KindBool.
func (Bool) Kind() Kind { return KindBool }

// Int is a SQL++ 64-bit integer scalar.
type Int int64

// Kind reports KindInt.
func (Int) Kind() Kind { return KindInt }

// Float is a SQL++ 64-bit floating-point scalar.
type Float float64

// Kind reports KindFloat.
func (Float) Kind() Kind { return KindFloat }

// String is a SQL++ character-string scalar.
type String string

// Kind reports KindString.
func (String) Kind() Kind { return KindString }

// Bytes is a SQL++ binary scalar (the logical type that CBOR byte strings
// and Ion blobs map to).
type Bytes []byte

// Kind reports KindBytes.
func (Bytes) Kind() Kind { return KindBytes }

// Array is an ordered SQL++ collection, denoted [ ... ].
type Array []Value

// Kind reports KindArray.
func (Array) Kind() Kind { return KindArray }

// Bag is an unordered SQL++ collection (a multiset), denoted {{ ... }}.
// The slice order is an implementation detail kept stable for rendering
// determinism; bag equality ignores it (see Equivalent).
type Bag []Value

// Kind reports KindBag.
func (Bag) Kind() Kind { return KindBag }

// Field is one attribute of a tuple.
type Field struct {
	Name  string
	Value Value
}

// Tuple is a SQL++ tuple: a collection of name/value attributes. The data
// model treats tuples as unordered, but insertion order is preserved for
// deterministic rendering. Duplicate attribute names are permitted (for
// compatibility with non-strict formats); navigation resolves to the first
// occurrence, which the paper documents as potentially nonreproducible.
type Tuple struct {
	fields []Field
}

// Kind reports KindTuple.
func (*Tuple) Kind() Kind { return KindTuple }

// NewTuple constructs a tuple from fields in order. Fields whose value is
// MISSING are dropped: MISSING may not appear as an attribute value
// (paper §II). A nil field value is treated as a programming error and
// panics.
func NewTuple(fields ...Field) *Tuple {
	t := &Tuple{fields: make([]Field, 0, len(fields))}
	for _, f := range fields {
		t.Put(f.Name, f.Value)
	}
	return t
}

// EmptyTuple returns a new tuple with no attributes.
func EmptyTuple() *Tuple { return &Tuple{} }

// Put appends attribute name with value v. If v is MISSING the attribute
// is not added. Put does not replace an existing attribute of the same
// name; use Set for replacement semantics.
func (t *Tuple) Put(name string, v Value) {
	if v == nil {
		panic("value: nil Value put into tuple attribute " + name)
	}
	if v.Kind() == KindMissing {
		return
	}
	t.fields = append(t.fields, Field{Name: name, Value: v})
}

// Set replaces the first attribute named name, or appends it if absent.
// Setting MISSING removes the attribute entirely.
func (t *Tuple) Set(name string, v Value) {
	if v == nil {
		panic("value: nil Value set into tuple attribute " + name)
	}
	if v.Kind() == KindMissing {
		t.Delete(name)
		return
	}
	for i := range t.fields {
		if t.fields[i].Name == name {
			t.fields[i].Value = v
			return
		}
	}
	t.fields = append(t.fields, Field{Name: name, Value: v})
}

// Delete removes every attribute named name.
func (t *Tuple) Delete(name string) {
	out := t.fields[:0]
	for _, f := range t.fields {
		if f.Name != name {
			out = append(out, f)
		}
	}
	t.fields = out
}

// Get navigates to attribute name. Navigation into a missing attribute
// yields MISSING (paper §IV-B case 1), so the second result reports
// whether the attribute was present.
func (t *Tuple) Get(name string) (Value, bool) {
	for _, f := range t.fields {
		if f.Name == name {
			return f.Value, true
		}
	}
	return Missing, false
}

// Len reports the number of attributes, counting duplicates.
func (t *Tuple) Len() int { return len(t.fields) }

// Fields returns the attributes in insertion order. The slice is shared;
// callers must not mutate it.
func (t *Tuple) Fields() []Field { return t.fields }

// NewInt returns an Int value.
func NewInt(i int64) Value { return Int(i) }

// NewFloat returns a Float value.
func NewFloat(f float64) Value { return Float(f) }

// NewString returns a String value.
func NewString(s string) Value { return String(s) }

// NewBool returns a Bool value.
func NewBool(b bool) Value { return Bool(b) }

// IsAbsent reports whether v is NULL or MISSING.
func IsAbsent(v Value) bool {
	k := v.Kind()
	return k == KindMissing || k == KindNull
}

// IsCollection reports whether v is an array or a bag.
func IsCollection(v Value) bool {
	k := v.Kind()
	return k == KindArray || k == KindBag
}

// IsNumeric reports whether v is an integer or float scalar.
func IsNumeric(v Value) bool {
	k := v.Kind()
	return k == KindInt || k == KindFloat
}

// Elements returns the elements of a collection value, or nil and false
// when v is not a collection.
func Elements(v Value) ([]Value, bool) {
	switch c := v.(type) {
	case Array:
		return c, true
	case Bag:
		return c, true
	}
	return nil, false
}

// AsFloat returns the numeric value of an Int or Float as float64.
func AsFloat(v Value) (float64, bool) {
	switch n := v.(type) {
	case Int:
		return float64(n), true
	case Float:
		return float64(n), true
	}
	return 0, false
}

// AsInt returns the value of an Int, or of a Float with an integral value
// that fits in int64.
func AsInt(v Value) (int64, bool) {
	switch n := v.(type) {
	case Int:
		return int64(n), true
	case Float:
		f := float64(n)
		if f == math.Trunc(f) && f >= math.MinInt64 && f <= math.MaxInt64 {
			return int64(f), true
		}
	}
	return 0, false
}
