package value

import (
	"math"
	"testing"
)

func TestKindNames(t *testing.T) {
	cases := map[Kind]string{
		KindMissing: "missing", KindNull: "null", KindBool: "boolean",
		KindInt: "integer", KindFloat: "float", KindString: "string",
		KindBytes: "bytes", KindArray: "array", KindTuple: "tuple",
		KindBag: "bag",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if Kind(200).String() != "invalid" {
		t.Errorf("out-of-range kind should be invalid")
	}
}

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Missing, KindMissing},
		{Null, KindNull},
		{True, KindBool},
		{Int(7), KindInt},
		{Float(1.5), KindFloat},
		{String("x"), KindString},
		{Bytes{1}, KindBytes},
		{Array{Int(1)}, KindArray},
		{Bag{Int(1)}, KindBag},
		{EmptyTuple(), KindTuple},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v.Kind() = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
}

func TestTuplePutDropsMissing(t *testing.T) {
	tup := NewTuple(Field{Name: "a", Value: Int(1)}, Field{Name: "b", Value: Missing})
	if tup.Len() != 1 {
		t.Fatalf("MISSING attribute should be dropped, got %d fields", tup.Len())
	}
	if _, ok := tup.Get("b"); ok {
		t.Error("attribute b should be absent")
	}
	v, ok := tup.Get("a")
	if !ok || v != Int(1) {
		t.Errorf("Get(a) = %v, %v", v, ok)
	}
}

func TestTupleGetAbsentIsMissing(t *testing.T) {
	tup := EmptyTuple()
	v, ok := tup.Get("nope")
	if ok || v.Kind() != KindMissing {
		t.Errorf("absent attribute should navigate to MISSING, got %v, %v", v, ok)
	}
}

func TestTupleDuplicateNames(t *testing.T) {
	tup := EmptyTuple()
	tup.Put("a", Int(1))
	tup.Put("a", Int(2))
	if tup.Len() != 2 {
		t.Fatalf("duplicate names are permitted; got %d fields", tup.Len())
	}
	// Navigation resolves to the first occurrence (documented as
	// potentially nonreproducible in the paper).
	if v, _ := tup.Get("a"); v != Int(1) {
		t.Errorf("Get should return the first duplicate, got %v", v)
	}
}

func TestTupleSetReplacesAndDeletes(t *testing.T) {
	tup := EmptyTuple()
	tup.Put("a", Int(1))
	tup.Set("a", Int(9))
	if v, _ := tup.Get("a"); v != Int(9) {
		t.Errorf("Set should replace, got %v", v)
	}
	tup.Set("b", Int(2))
	if tup.Len() != 2 {
		t.Errorf("Set should append new attribute")
	}
	tup.Set("a", Missing)
	if _, ok := tup.Get("a"); ok {
		t.Error("setting MISSING should delete the attribute")
	}
	tup.Delete("b")
	if tup.Len() != 0 {
		t.Errorf("Delete should remove, got %d", tup.Len())
	}
}

func TestTupleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("putting a nil Value should panic: the data plane is nil-free")
		}
	}()
	EmptyTuple().Put("a", nil)
}

func TestHelpers(t *testing.T) {
	if !IsAbsent(Missing) || !IsAbsent(Null) || IsAbsent(Int(0)) {
		t.Error("IsAbsent wrong")
	}
	if !IsCollection(Array{}) || !IsCollection(Bag{}) || IsCollection(EmptyTuple()) {
		t.Error("IsCollection wrong")
	}
	if !IsNumeric(Int(1)) || !IsNumeric(Float(1)) || IsNumeric(String("1")) {
		t.Error("IsNumeric wrong")
	}
	if e, ok := Elements(Array{Int(1)}); !ok || len(e) != 1 {
		t.Error("Elements over array wrong")
	}
	if _, ok := Elements(Int(1)); ok {
		t.Error("Elements over scalar should fail")
	}
}

func TestAsIntAsFloat(t *testing.T) {
	if f, ok := AsFloat(Int(3)); !ok || f != 3 {
		t.Error("AsFloat(Int) wrong")
	}
	if f, ok := AsFloat(Float(2.5)); !ok || f != 2.5 {
		t.Error("AsFloat(Float) wrong")
	}
	if _, ok := AsFloat(String("x")); ok {
		t.Error("AsFloat(String) should fail")
	}
	if i, ok := AsInt(Float(4.0)); !ok || i != 4 {
		t.Error("AsInt of integral float wrong")
	}
	if _, ok := AsInt(Float(4.5)); ok {
		t.Error("AsInt of fractional float should fail")
	}
	if _, ok := AsInt(Float(math.Inf(1))); ok {
		t.Error("AsInt of +Inf should fail")
	}
	if i, ok := AsInt(Int(-9)); !ok || i != -9 {
		t.Error("AsInt(Int) wrong")
	}
}

func TestRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Missing, "MISSING"},
		{Null, "null"},
		{True, "true"},
		{False, "false"},
		{Int(-3), "-3"},
		{Float(1.5), "1.5"},
		{Float(2), "2.0"},
		{Float(math.NaN()), "NaN"},
		{String("a'b"), "'a''b'"},
		{Bytes{0xde, 0xad}, "x'dead'"},
		{Array{Int(1), String("x")}, "[1, 'x']"},
		{Bag{Int(1)}, "{{1}}"},
		{NewTuple(Field{"a", Int(1)}, Field{"b", Null}), "{'a': 1, 'b': null}"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestPretty(t *testing.T) {
	v := Bag{NewTuple(Field{"a", Array{Int(1), Int(2)}})}
	got := Pretty(v)
	want := "{{\n  {\n    'a': [\n      1,\n      2\n    ]\n  }\n}}"
	if got != want {
		t.Errorf("Pretty = %q, want %q", got, want)
	}
	if Pretty(EmptyTuple()) != "{}" {
		t.Error("empty tuple should pretty-print compactly")
	}
	if Pretty(Array{}) != "[]" {
		t.Error("empty array should pretty-print compactly")
	}
}
