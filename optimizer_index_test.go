package sqlpp_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"sqlpp"
)

// indexedEngine is a small fixture with heterogeneous, partly-absent
// key attributes so indexed and scanned semantics can diverge if the
// index mishandles MISSING/NULL or mixed types.
func indexedEngine(t testing.TB) *sqlpp.Engine {
	t.Helper()
	db := sqlpp.New(&sqlpp.Options{Parallelism: 1})
	if err := db.RegisterSION("emp", `{{
	  {'id': 1, 'deptno': 1, 'name': 'alice'},
	  {'id': 2, 'deptno': 2, 'name': 'bob'},
	  {'id': 2.0, 'deptno': 1, 'name': 'bea'},
	  {'id': 'x', 'deptno': 2, 'name': 'carl'},
	  {'id': null, 'deptno': 1, 'name': 'dora'},
	  {'deptno': 2, 'name': 'evan'},
	  {'id': 4, 'name': 'fred'}
	}}`); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterSION("dept", `{{
	  {'dno': 1, 'dn': 'eng'},
	  {'dno': 2, 'dn': 'ops'},
	  {'dno': 3, 'dn': 'idle'}
	}}`); err != nil {
		t.Fatal(err)
	}
	return db
}

func findOp(st *sqlpp.OpStats, op string) *sqlpp.OpStats {
	if st == nil {
		return nil
	}
	if st.Op == op {
		return st
	}
	for _, c := range st.Children {
		if hit := findOp(c, op); hit != nil {
			return hit
		}
	}
	return nil
}

func notesContain(notes []string, substr string) bool {
	for _, n := range notes {
		if strings.Contains(n, substr) {
			return true
		}
	}
	return false
}

// queriesIdentical runs query on both engines and requires the exact
// same rendering (the engine's canonical form) or the exact same error.
func queriesIdentical(t *testing.T, a, b *sqlpp.Engine, query string) {
	t.Helper()
	va, erra := a.Query(query)
	vb, errb := b.Query(query)
	if (erra == nil) != (errb == nil) {
		t.Fatalf("error divergence on %q: %v vs %v", query, erra, errb)
	}
	if erra != nil {
		if erra.Error() != errb.Error() {
			t.Fatalf("error text divergence on %q:\n  a: %v\n  b: %v", query, erra, errb)
		}
		return
	}
	if va.String() != vb.String() {
		t.Fatalf("result divergence on %q:\n  a: %s\n  b: %s", query, va, vb)
	}
}

// TestIndexAccessPathSelection: the optimizer rewrites matching WHERE
// conjuncts to index access and says so in the plan notes, choosing
// hash for equality and ordered for ranges.
func TestIndexAccessPathSelection(t *testing.T) {
	db := indexedEngine(t)
	if err := db.CreateIndex("ix_id_h", "emp", "id", "hash"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("ix_id_o", "emp", "id", "ordered"); err != nil {
		t.Fatal(err)
	}

	eq, err := db.Prepare(`SELECT VALUE e.name FROM emp AS e WHERE e.id = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if !notesContain(eq.PlanNotes(), "index-eq(ix_id_h)") {
		t.Errorf("equality plan prefers %v, want index-eq(ix_id_h)", eq.PlanNotes())
	}

	rng, err := db.Prepare(`SELECT VALUE e.name FROM emp AS e WHERE e.id >= 1 AND e.id < 3`)
	if err != nil {
		t.Fatal(err)
	}
	if !notesContain(rng.PlanNotes(), "index-range(ix_id_o)") {
		t.Errorf("range plan has %v, want index-range(ix_id_o)", rng.PlanNotes())
	}

	btw, err := db.Prepare(`SELECT VALUE e.name FROM emp AS e WHERE e.id BETWEEN 1 AND 2`)
	if err != nil {
		t.Fatal(err)
	}
	if !notesContain(btw.PlanNotes(), "index-range(ix_id_o)") {
		t.Errorf("BETWEEN plan has %v, want index-range(ix_id_o)", btw.PlanNotes())
	}

	// No index on deptno: no index note.
	none, err := db.Prepare(`SELECT VALUE e.name FROM emp AS e WHERE e.deptno = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if notesContain(none.PlanNotes(), "index-") {
		t.Errorf("unindexed path still chose an index: %v", none.PlanNotes())
	}

	// Strict mode disables index access: permissive re-verification is
	// what licenses the rewrite.
	sdb := sqlpp.New(&sqlpp.Options{Parallelism: 1, StopOnError: true})
	if err := sdb.RegisterSION("emp", `{{ {'id': 1, 'name': 'a'}, {'id': 2, 'name': 'b'} }}`); err != nil {
		t.Fatal(err)
	}
	if err := sdb.CreateIndex("ix", "emp", "id", "hash"); err != nil {
		t.Fatal(err)
	}
	strict, err := sdb.Prepare(`SELECT VALUE e.name FROM emp AS e WHERE e.id = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if notesContain(strict.PlanNotes(), "index-") {
		t.Errorf("strict-mode plan chose an index: %v", strict.PlanNotes())
	}
}

// TestExplainAnalyzeIndexOperators: EXPLAIN ANALYZE grows index_probe
// and index_range operator blocks with probe/hit counters that match
// the data.
func TestExplainAnalyzeIndexOperators(t *testing.T) {
	db := indexedEngine(t)
	if err := db.CreateIndex("ix", "emp", "id", "ordered"); err != nil {
		t.Fatal(err)
	}

	p, err := db.Prepare(`SELECT VALUE e.name FROM emp AS e WHERE e.id = 2`)
	if err != nil {
		t.Fatal(err)
	}
	res, st, err := p.ExplainAnalyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.String(); got != `{{'bob', 'bea'}}` {
		t.Fatalf("indexed equality result = %s", got)
	}
	probe := findOp(st, "index_probe")
	if probe == nil {
		t.Fatalf("no index_probe operator in stats:\n%s", st.Render(false))
	}
	if probe.Label != "ix" {
		t.Errorf("index_probe label = %q, want ix", probe.Label)
	}
	// 2 and 2.0 are grouping-equal: one probe, two candidate hits, both
	// re-verified into the output.
	if probe.Counters["probes"] != 1 || probe.Counters["hits"] != 2 {
		t.Errorf("index_probe counters = %v, want probes=1 hits=2", probe.Counters)
	}
	if probe.RowsOut != 2 {
		t.Errorf("index_probe rows_out = %d, want 2", probe.RowsOut)
	}

	r, err := db.Prepare(`SELECT VALUE e.name FROM emp AS e WHERE e.id >= 1 AND e.id < 4`)
	if err != nil {
		t.Fatal(err)
	}
	res, st, err = r.ExplainAnalyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.String(); got != `{{'alice', 'bob', 'bea'}}` {
		t.Fatalf("indexed range result = %s", got)
	}
	rngOp := findOp(st, "index_range")
	if rngOp == nil {
		t.Fatalf("no index_range operator in stats:\n%s", st.Render(false))
	}
	// Candidates 1, 2, 2.0 — the string 'x', the null, and the missing
	// ids never enter the class-restricted range.
	if rngOp.Counters["probes"] != 1 || rngOp.Counters["hits"] != 3 {
		t.Errorf("index_range counters = %v, want probes=1 hits=3", rngOp.Counters)
	}
}

// TestIndexJoinByteIdentity: an index on the join key turns the hash
// build side into index probes; results must not move.
func TestIndexJoinByteIdentity(t *testing.T) {
	query := `SELECT e.name AS name, d.dn AS dn
	          FROM emp AS e JOIN dept AS d ON e.deptno = d.dno`
	left := `SELECT e.name AS name, d.dn AS dn
	         FROM emp AS e LEFT JOIN dept AS d ON e.deptno = d.dno`

	plain := indexedEngine(t)
	indexed := indexedEngine(t)
	if err := indexed.CreateIndex("ix_dno", "dept", "dno", "hash"); err != nil {
		t.Fatal(err)
	}

	p, err := indexed.Prepare(query)
	if err != nil {
		t.Fatal(err)
	}
	if !notesContain(p.PlanNotes(), "index-join(ix_dno)") {
		t.Fatalf("join plan has %v, want index-join(ix_dno)", p.PlanNotes())
	}
	queriesIdentical(t, plain, indexed, query)
	queriesIdentical(t, plain, indexed, left)

	_, st, err := p.ExplainAnalyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	j := findOp(st, "index_join")
	if j == nil {
		t.Fatalf("no index_join operator in stats:\n%s", st.Render(false))
	}
	if j.Counters["probes"] == 0 || j.Counters["hits"] == 0 {
		t.Errorf("index_join counters = %v, want non-zero probes and hits", j.Counters)
	}
}

// TestIndexFallbackAfterDrop: plans prepared against an index keep
// answering identically when the index disappears — the runtime falls
// back to the scan it re-verifies against anyway.
func TestIndexFallbackAfterDrop(t *testing.T) {
	db := indexedEngine(t)
	query := `SELECT VALUE e.name FROM emp AS e WHERE e.id = 2`
	baseline, err := db.Query(query)
	if err != nil {
		t.Fatal(err)
	}

	if err := db.CreateIndex("ix", "emp", "id", "hash"); err != nil {
		t.Fatal(err)
	}
	p, err := db.Prepare(query)
	if err != nil {
		t.Fatal(err)
	}
	if !notesContain(p.PlanNotes(), "index-eq(ix)") {
		t.Fatalf("plan has %v, want index-eq(ix)", p.PlanNotes())
	}
	indexed, err := p.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if indexed.String() != baseline.String() {
		t.Fatalf("indexed result diverges: %s vs %s", indexed, baseline)
	}

	// Drop out from under the prepared plan; a fresh physState resolves
	// the index lazily, misses, and scans.
	if !db.DropIndex("ix") {
		t.Fatal("DropIndex failed")
	}
	after, err := p.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if after.String() != baseline.String() {
		t.Fatalf("post-drop result diverges: %s vs %s", after, baseline)
	}
}

// TestIndexSurvivesAppend: incremental ingest extends the index and
// indexed queries immediately see the new rows, identically to scans.
func TestIndexSurvivesAppend(t *testing.T) {
	plain := indexedEngine(t)
	indexed := indexedEngine(t)
	if err := indexed.CreateIndex("ix_eq", "emp", "id", "hash"); err != nil {
		t.Fatal(err)
	}
	if err := indexed.CreateIndex("ix_rng", "emp", "id", "ordered"); err != nil {
		t.Fatal(err)
	}

	batch := `{{ {'id': 2, 'name': 'gina'}, {'id': 9, 'deptno': 1, 'name': 'hugo'}, {'name': 'ida'} }}`
	if err := plain.AppendSION("emp", batch); err != nil {
		t.Fatal(err)
	}
	if err := indexed.AppendSION("emp", batch); err != nil {
		t.Fatal(err)
	}

	for _, q := range []string{
		`SELECT VALUE e.name FROM emp AS e WHERE e.id = 2`,
		`SELECT VALUE e.name FROM emp AS e WHERE e.id = 9`,
		`SELECT VALUE e.name FROM emp AS e WHERE e.id >= 2 AND e.id <= 9`,
		`SELECT VALUE e FROM emp AS e WHERE e.id = 'x'`,
	} {
		queriesIdentical(t, plain, indexed, q)
	}

	// The extension is visible through the index itself, not a rebuild
	// side effect: entry counts grew.
	for _, info := range indexed.Indexes() {
		if info.Entries != 10 {
			t.Errorf("index %s covers %d entries after append, want 10", info.Name, info.Entries)
		}
	}
}

// TestIndexedIdentityOnAbsentAndMixedKeys: the predicates the paper's
// permissive semantics make tricky — MISSING keys, NULL keys, and
// mixed-type comparisons — return identical results with and without
// indexes.
func TestIndexedIdentityOnAbsentAndMixedKeys(t *testing.T) {
	plain := indexedEngine(t)
	indexed := indexedEngine(t)
	for _, spec := range [][3]string{
		{"ih", "id", "hash"},
		{"io", "id", "ordered"},
		{"dh", "deptno", "hash"},
		{"do", "deptno", "ordered"},
	} {
		if err := indexed.CreateIndex(spec[0], "emp", spec[1], spec[2]); err != nil {
			t.Fatal(err)
		}
	}

	queries := []string{
		`SELECT VALUE e.name FROM emp AS e WHERE e.id = 2`,
		`SELECT VALUE e.name FROM emp AS e WHERE e.id = 'x'`,
		`SELECT VALUE e.name FROM emp AS e WHERE e.id = null`,
		`SELECT VALUE e.name FROM emp AS e WHERE e.id = missing`,
		`SELECT VALUE e.name FROM emp AS e WHERE e.id > 0`,
		`SELECT VALUE e.name FROM emp AS e WHERE e.id >= 'a' AND e.id <= 'z'`,
		`SELECT VALUE e.name FROM emp AS e WHERE e.id BETWEEN 1 AND 4`,
		`SELECT VALUE e.name FROM emp AS e WHERE e.deptno = 1 AND e.id = 2`,
		`SELECT VALUE e.name FROM emp AS e WHERE e.deptno >= 1 AND e.deptno < 2 AND e.id > 1`,
		`SELECT VALUE e.name FROM emp AS e WHERE e.id = 1 + 1`,
	}
	for _, q := range queries {
		queriesIdentical(t, plain, indexed, q)
	}
}

// TestIndexInfoSurface: the library-level Indexes() report matches the
// built structures.
func TestIndexInfoSurface(t *testing.T) {
	db := indexedEngine(t)
	if err := db.CreateIndex("ix", "emp", "id", "ordered"); err != nil {
		t.Fatal(err)
	}
	infos := db.Indexes()
	if len(infos) != 1 {
		t.Fatalf("Indexes() = %d entries, want 1", len(infos))
	}
	got := infos[0]
	want := sqlpp.IndexInfo{Name: "ix", Collection: "emp", Path: "id", Kind: "ordered",
		Entries: 7, Keys: 4, Missing: 1, Null: 1}
	if got != want {
		t.Errorf("IndexInfo = %+v, want %+v", got, want)
	}
	if db.IndexEpoch() == 0 {
		t.Error("IndexEpoch still zero after registrations and DDL")
	}
	if err := db.CreateIndex("ix2", "emp", "id.0.bad..path", "hash"); err == nil {
		t.Error("CreateIndex with empty path step accepted")
	}
	if err := db.CreateIndex("ix3", "emp", "id", "btree"); err == nil {
		t.Error("CreateIndex with unknown kind accepted")
	}
}

// TestIndexScanUnderGovernor: probe charging shows up as a typed
// resource error when the budget is tiny, and the same query passes
// under a sane budget with identical results to the scan.
func TestIndexScanUnderGovernor(t *testing.T) {
	mk := func(lim sqlpp.Limits, withIndex bool) *sqlpp.Engine {
		db := sqlpp.New(&sqlpp.Options{Parallelism: 1, Limits: lim})
		var sb strings.Builder
		sb.WriteString("{{")
		for i := 0; i < 500; i++ {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "{'id': %d}", i%50)
		}
		sb.WriteString("}}")
		if err := db.RegisterSION("rows", sb.String()); err != nil {
			t.Fatal(err)
		}
		if withIndex {
			if err := db.CreateIndex("ix", "rows", "id", "ordered"); err != nil {
				t.Fatal(err)
			}
		}
		return db
	}

	// A budget the 500-element build fits under (it charges 500) but the
	// correlated probe join does not: every outer row's probe charges its
	// candidates, so the join accumulates 500×10 probe charges and trips.
	tight := mk(sqlpp.Limits{MaxMaterializedValues: 520}, true)
	_, err := tight.Query(`SELECT VALUE [a.id, b.id] FROM rows AS a, rows AS b WHERE b.id = a.id AND a.id < 5`)
	var re *sqlpp.ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("want ResourceError from governed index probe, got %v", err)
	}
	if !strings.Contains(err.Error(), "index-probe") {
		t.Errorf("resource error not attributed to the probe site: %v", err)
	}

	// Sane budget: identical to the scan.
	lim := sqlpp.Limits{MaxMaterializedValues: 100000}
	queriesIdentical(t, mk(lim, false), mk(lim, true),
		`SELECT VALUE r.id FROM rows AS r WHERE r.id >= 10 AND r.id < 13`)
}
