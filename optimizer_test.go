package sqlpp_test

// The physical optimizer's end-to-end contract: for any query the
// optimized engine (pushdown, hoisting, hash joins, parallel scans) must
// render byte-identically to the naive sequential engine. These tests
// check it over a generated corpus and over every paper listing.

import (
	"fmt"
	"testing"

	"sqlpp"
	"sqlpp/internal/bench"
	"sqlpp/internal/compat"
)

// optimizerBattery covers the shapes the physical layer rewrites:
// equi-joins in both syntaxes, LEFT JOIN padding, pushdown-eligible
// WHERE conjuncts, grouping, DISTINCT, and correlated unnesting that
// must stay on the nested-loop path. The emp collection is large enough
// (1500 rows) that the parallel outer scan actually fires.
var optimizerBattery = []string{
	`SELECT e.name AS n, d.name AS dn FROM emp AS e JOIN dept AS d ON e.deptno = d.dno`,
	`SELECT e.name AS n, d.name AS dn FROM emp AS e LEFT JOIN dept AS d ON e.deptno = d.dno AND d.budget > 500000`,
	`SELECT e.name AS n, d.budget AS b FROM emp AS e, dept AS d WHERE e.deptno = d.dno AND e.salary > 120000`,
	`SELECT e.deptno AS dno, COUNT(*) AS n, AVG(e.salary) AS avg FROM emp AS e GROUP BY e.deptno`,
	`SELECT e.deptno AS dno, COUNT(*) AS n FROM emp AS e WHERE e.title = 'Engineer'
	 GROUP BY e.deptno HAVING COUNT(*) > 3`,
	`SELECT DISTINCT e.title AS title, e.deptno AS dno FROM emp AS e`,
	`SELECT h.name AS n, p AS proj FROM hr AS h, h.projects AS p WHERE p LIKE '%Security%'`,
	`FROM emp AS e GROUP BY e.deptno AS dno GROUP AS g
	 SELECT dno AS dno, (FROM g AS v SELECT VALUE v.e.salary) AS pay`,
	`SELECT VALUE e.name FROM emp AS e ORDER BY e.salary DESC, e.name LIMIT 12 OFFSET 3`,
	`SELECT e.name AS n FROM emp AS e
	 WHERE EXISTS (SELECT VALUE d FROM dept AS d WHERE d.dno = e.deptno AND d.budget > 400000)`,
}

func optimizerEngines(t *testing.T, seed int64) (naive, optimized *sqlpp.Engine) {
	t.Helper()
	naive = sqlpp.New(&sqlpp.Options{DisableOptimizer: true, Parallelism: 1})
	optimized = sqlpp.New(&sqlpp.Options{Parallelism: 8})
	for _, db := range []*sqlpp.Engine{naive, optimized} {
		if err := db.Register("emp", bench.FlatEmp(1500, 40, seed)); err != nil {
			t.Fatal(err)
		}
		if err := db.Register("dept", bench.Departments(40, seed)); err != nil {
			t.Fatal(err)
		}
		if err := db.Register("hr", bench.HR(bench.HROptions{N: 200, ScalarProjects: true, Seed: seed})); err != nil {
			t.Fatal(err)
		}
	}
	return naive, optimized
}

// TestOptimizerEquivalenceProperty: over several random datasets, every
// battery query renders byte-identically on the naive sequential engine
// and the fully optimized parallel one.
func TestOptimizerEquivalenceProperty(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		naive, optimized := optimizerEngines(t, seed)
		for i, q := range optimizerBattery {
			want, err := naive.Query(q)
			if err != nil {
				t.Fatalf("seed %d query %d naive: %v", seed, i, err)
			}
			got, err := optimized.Query(q)
			if err != nil {
				t.Fatalf("seed %d query %d optimized: %v", seed, i, err)
			}
			if want.String() != got.String() {
				t.Errorf("seed %d: optimizer changed query %d (%s):\n  naive     %s\n  optimized %s",
					seed, i, q, want, got)
			}
		}
	}
}

// TestPaperListingsUnchangedByOptimizer: every paper listing renders
// byte-identically with the optimizer on and off, in each mode the
// listing declares.
func TestPaperListingsUnchangedByOptimizer(t *testing.T) {
	for _, c := range compat.PaperCases() {
		for _, compatMode := range []bool{false, true} {
			if c.Mode == compat.Core && compatMode {
				continue
			}
			if c.Mode == compat.Compat && !compatMode {
				continue
			}
			run := func(disable bool) (string, error) {
				db := sqlpp.New(&sqlpp.Options{
					Compat:           compatMode,
					StopOnError:      c.Strict,
					DisableOptimizer: disable,
				})
				for name, src := range c.Data {
					if err := db.RegisterSION(name, src); err != nil {
						return "", fmt.Errorf("register %s: %w", name, err)
					}
				}
				v, err := db.Query(c.Query)
				if err != nil {
					return "", err
				}
				return v.String(), nil
			}
			naive, nerr := run(true)
			opt, oerr := run(false)
			if (nerr == nil) != (oerr == nil) {
				t.Errorf("%s (compat=%v): error behavior diverges: naive=%v optimized=%v",
					c.Name, compatMode, nerr, oerr)
				continue
			}
			if naive != opt {
				t.Errorf("%s (compat=%v): optimizer changed the listing:\n  naive     %s\n  optimized %s",
					c.Name, compatMode, naive, opt)
			}
		}
	}
}
