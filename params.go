package sqlpp

import (
	"context"
	"fmt"
	"sort"

	"sqlpp/internal/eval"
	"sqlpp/internal/parser"
	"sqlpp/internal/rewrite"
	"sqlpp/internal/value"
)

// Parameterized queries: external values referenced by name inside a
// query, supplied per execution. Parameter names conventionally start
// with '$' ($min_salary), which the lexer accepts as identifier text, so
// they can never collide with catalog names or SQL keywords; any
// identifier works, though, and parameters shadow catalog names.

// PreparedParams is a compiled parameterized query.
type PreparedParams struct {
	engine *Engine
	core   *Prepared
	names  []string
}

// PrepareParams compiles a query whose free references to the given
// parameter names are left open, to be supplied at execution.
func (e *Engine) PrepareParams(query string, params ...string) (*PreparedParams, error) {
	tree, err := parser.Parse(query)
	if err != nil {
		return nil, err
	}
	ropts := rewrite.Options{
		Compat: e.opts.Compat,
		Names:  e.cat,
		Params: params,
	}
	if e.types != nil {
		ropts.Schema = e.types
	}
	core, err := rewrite.Rewrite(tree, ropts)
	if err != nil {
		return nil, err
	}
	names := append([]string(nil), params...)
	sort.Strings(names)
	inner := &Prepared{engine: e, core: core, planNotes: e.optimize(core), params: names}
	if err := e.vet(inner); err != nil {
		return nil, err
	}
	return &PreparedParams{
		engine: e,
		core:   inner,
		names:  names,
	}, nil
}

// Diagnostics runs the static semantic analyzer over the parameterized
// query; parameters are treated as bound variables of unknown type. See
// Prepared.Diagnostics.
func (p *PreparedParams) Diagnostics() []Diagnostic { return p.core.Diagnostics() }

// PlanNotes describes the physical optimizations applied to the
// parameterized query; see Prepared.PlanNotes.
func (p *PreparedParams) PlanNotes() []string { return p.core.PlanNotes() }

// Params returns the declared parameter names, sorted.
func (p *PreparedParams) Params() []string {
	return append([]string(nil), p.names...)
}

// Core returns the SQL++ Core form of the parameterized query.
func (p *PreparedParams) Core() string { return p.core.Core() }

// Exec runs the query with the given parameter values. Every declared
// parameter must be supplied (pass value.Null explicitly for an absent
// value); unknown names are rejected. Like Prepared, a PreparedParams is
// immutable after compilation and safe for concurrent Exec calls.
func (p *PreparedParams) Exec(params map[string]value.Value) (value.Value, error) {
	return p.ExecContext(context.Background(), params)
}

// ExecContext is Exec under a deadline/cancellation context; see
// Prepared.ExecContext for the semantics.
func (p *PreparedParams) ExecContext(ctx context.Context, params map[string]value.Value) (value.Value, error) {
	v, _, err := p.exec(ctx, params, false)
	return v, err
}

// ExplainAnalyze executes the parameterized query with per-operator
// instrumentation; see Prepared.ExplainAnalyze.
func (p *PreparedParams) ExplainAnalyze(ctx context.Context, params map[string]value.Value) (value.Value, *OpStats, error) {
	return p.exec(ctx, params, true)
}

func (p *PreparedParams) exec(ctx context.Context, params map[string]value.Value, explain bool) (value.Value, *OpStats, error) {
	env := eval.NewEnv()
	supplied := 0
	for name, v := range params {
		if !p.declared(name) {
			return nil, nil, fmt.Errorf("sqlpp: undeclared parameter %q", name)
		}
		if v == nil {
			return nil, nil, fmt.Errorf("sqlpp: nil value for parameter %q (use value.Null)", name)
		}
		env.Bind(name, v)
		supplied++
	}
	if supplied != len(p.names) {
		for _, name := range p.names {
			if _, ok := params[name]; !ok {
				return nil, nil, fmt.Errorf("sqlpp: missing parameter %q", name)
			}
		}
	}
	ec := p.engine.newContext(ctx)
	if explain {
		ec.Stats = eval.NewStatsSink()
	}
	v, err := runProtected(ec, env, p.core.core)
	if err != nil {
		return nil, nil, err
	}
	if explain {
		return v, ec.Stats.Root.Snapshot(), nil
	}
	return v, nil, nil
}

func (p *PreparedParams) declared(name string) bool {
	for _, n := range p.names {
		if n == name {
			return true
		}
	}
	return false
}
