package sqlpp

import (
	"strings"
	"testing"

	"sqlpp/internal/value"
)

func paramDB(t *testing.T) *Engine {
	t.Helper()
	db := New(nil)
	if err := db.RegisterSION("emp", `{{
	  {'name': 'Ada', 'salary': 120, 'dept': 'eng'},
	  {'name': 'Bob', 'salary': 80, 'dept': 'eng'},
	  {'name': 'Cleo', 'salary': 150, 'dept': 'ops'}
	}}`); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPreparedParams(t *testing.T) {
	db := paramDB(t)
	p, err := db.PrepareParams(
		`SELECT e.name AS name FROM emp AS e WHERE e.salary >= $min AND e.dept = $dept`,
		"$min", "$dept")
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Exec(map[string]value.Value{
		"$min":  value.Int(100),
		"$dept": value.String("eng"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equivalent(got, MustParseValue(`{{ {'name': 'Ada'} }}`)) {
		t.Errorf("got %s", got)
	}
	// Re-execute with different values: one prepared plan, many runs.
	got2, err := p.Exec(map[string]value.Value{
		"$min":  value.Int(0),
		"$dept": value.String("ops"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equivalent(got2, MustParseValue(`{{ {'name': 'Cleo'} }}`)) {
		t.Errorf("got %s", got2)
	}
}

func TestParamsValidation(t *testing.T) {
	db := paramDB(t)
	p, err := db.PrepareParams(`SELECT VALUE $x`, "$x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Exec(nil); err == nil || !strings.Contains(err.Error(), "missing parameter") {
		t.Errorf("missing params should fail: %v", err)
	}
	if _, err := p.Exec(map[string]value.Value{"$y": value.Int(1)}); err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Errorf("undeclared params should fail: %v", err)
	}
	if _, err := p.Exec(map[string]value.Value{"$x": nil}); err == nil {
		t.Error("nil param should fail")
	}
	if got := p.Params(); len(got) != 1 || got[0] != "$x" {
		t.Errorf("Params = %v", got)
	}
	// An undeclared reference stays a compile error.
	if _, err := db.PrepareParams(`SELECT VALUE $x + $zzz`, "$x"); err == nil {
		t.Error("unbound reference should fail at compile time")
	}
}

func TestParamsBindAnyValue(t *testing.T) {
	db := paramDB(t)
	p, err := db.PrepareParams(`SELECT VALUE e.name FROM emp AS e WHERE e.dept IN $depts`, "$depts")
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Exec(map[string]value.Value{
		"$depts": MustParseValue(`['eng', 'hr']`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equivalent(got, MustParseValue(`{{'Ada', 'Bob'}}`)) {
		t.Errorf("collection-valued parameter: got %s", got)
	}
	// Parameters shadow catalog names.
	p2, err := db.PrepareParams(`SELECT VALUE x FROM emp AS x`, "emp")
	if err != nil {
		t.Fatal(err)
	}
	got2, err := p2.Exec(map[string]value.Value{"emp": MustParseValue(`{{42}}`)})
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equivalent(got2, MustParseValue(`{{42}}`)) {
		t.Errorf("parameter should shadow the catalog name: %s", got2)
	}
}
