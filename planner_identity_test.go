package sqlpp_test

// Property battery for the cost-based planner: statistics may only
// change how a query runs, never what it returns. Randomized
// heterogeneous catalogs (mixed-type join keys, NULLs, MISSING fields,
// bags and arrays, secondary indexes) are driven through randomized
// join/filter templates on a statistics-aware engine and on a fully
// naive one (-no-opt: no pushdown, no hash joins, no reordering); the
// renderings must be byte-identical. The paper listings get the same
// guarantee explicitly.

import (
	"fmt"
	"math/rand"
	"testing"

	"sqlpp"
	"sqlpp/internal/compat"
	"sqlpp/internal/sion"
	"sqlpp/internal/value"
)

// randPlannerKey yields a heterogeneous join key in a small domain so
// randomized joins actually match across collections — ints and floats
// that collide under join equality, strings, bools, NULL, or MISSING.
func randPlannerKey(rng *rand.Rand) (value.Value, bool) {
	switch rng.Intn(7) {
	case 0, 1:
		return value.Int(int64(rng.Intn(10))), true
	case 2:
		return value.Float(float64(rng.Intn(10))), true
	case 3:
		return value.String(string(rune('a' + rng.Intn(6)))), true
	case 4:
		return value.Bool(rng.Intn(2) == 0), true
	case 5:
		return value.Null, true
	default:
		return nil, false
	}
}

// randCatalog registers 2-3 random collections named c0..c2 on both
// engines: random sizes (occasionally large enough to cross the
// reorder and parallel thresholds), random bag/array shape, key
// attribute k, low-cardinality attribute g, and ordinal v.
func randCatalog(rng *rand.Rand, engines ...*sqlpp.Engine) int {
	ncoll := 2 + rng.Intn(2)
	for ci := 0; ci < ncoll; ci++ {
		// At most the first collection grows large (crossing the reorder
		// and parallel thresholds); a naive nested-loop join of two large
		// relations would dominate the battery's runtime.
		n := 5 + rng.Intn(40)
		if ci == 0 && rng.Intn(3) == 0 {
			n = 300 + rng.Intn(1200)
		}
		elems := make([]value.Value, 0, n)
		for i := 0; i < n; i++ {
			t := value.EmptyTuple()
			t.Put("v", value.Int(int64(i)))
			if k, ok := randPlannerKey(rng); ok {
				t.Put("k", k)
			}
			t.Put("g", value.Int(int64(i%3)))
			elems = append(elems, t)
		}
		var src value.Value
		if rng.Intn(2) == 0 {
			src = value.Bag(elems)
		} else {
			src = value.Array(elems)
		}
		for _, db := range engines {
			if err := db.Register(fmt.Sprintf("c%d", ci), src); err != nil {
				panic(err)
			}
		}
	}
	return ncoll
}

// randPlannerQuery builds a random query shape over c0..c{n-1}:
// comma-joins and JOIN chains on the heterogeneous key, local filters,
// and the occasional aggregate.
func randPlannerQuery(rng *rand.Rand, ncoll int) string {
	switch rng.Intn(6) {
	case 0: // filter only
		return fmt.Sprintf(`SELECT VALUE a.v FROM c0 AS a WHERE a.g = %d`, rng.Intn(3))
	case 1: // range filter
		return `SELECT VALUE a.v FROM c0 AS a WHERE a.v >= 3 AND a.v < 20`
	case 2: // 2-way comma join
		return `SELECT a.v AS av, b.v AS bv FROM c0 AS a, c1 AS b WHERE a.k = b.k`
	case 3: // explicit JOIN with extra local filter
		return fmt.Sprintf(`SELECT a.v AS av, b.v AS bv FROM c0 AS a JOIN c1 AS b ON a.k = b.k WHERE b.g = %d`, rng.Intn(3))
	case 4: // aggregate over a join
		return `SELECT a.g AS g, COUNT(*) AS n FROM c0 AS a, c1 AS b WHERE a.k = b.k GROUP BY a.g`
	default:
		if ncoll < 3 {
			return `SELECT a.v AS av, b.v AS bv FROM c0 AS a, c1 AS b WHERE a.k = b.k`
		}
		// 3-way chain, written in a random (possibly adversarial) order.
		orders := [][3]string{{"c0", "c1", "c2"}, {"c2", "c0", "c1"}, {"c1", "c2", "c0"}}
		o := orders[rng.Intn(len(orders))]
		return fmt.Sprintf(
			`SELECT x.v AS xv, z.v AS zv FROM %s AS x, %s AS y, %s AS z WHERE x.k = y.k AND y.k = z.k`,
			o[0], o[1], o[2])
	}
}

// TestCostBasedIdentityProperty: 200 randomized catalogs x randomized
// query shapes, cost-based execution diffed byte-for-byte against the
// naive clause pipeline. Some trials add secondary indexes so the
// index-vs-scan cost decision is exercised under heterogeneous keys.
func TestCostBasedIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	for trial := 0; trial < 200; trial++ {
		naive := sqlpp.New(&sqlpp.Options{Parallelism: 1, DisableOptimizer: true})
		costed := sqlpp.New(&sqlpp.Options{Parallelism: 1})
		ncoll := randCatalog(rng, naive, costed)
		if rng.Intn(3) == 0 {
			// Indexes only on the cost-based engine: the veto/keep choice
			// must never show through in results.
			for ci := 0; ci < ncoll; ci++ {
				kind := "hash"
				if rng.Intn(2) == 0 {
					kind = "ordered"
				}
				if err := costed.CreateIndex(fmt.Sprintf("ix%d", ci), fmt.Sprintf("c%d", ci), "k", kind); err != nil {
					t.Fatal(err)
				}
			}
		}
		query := randPlannerQuery(rng, ncoll)
		nv, nerr := naive.Query(query)
		cv, cerr := costed.Query(query)
		if (nerr == nil) != (cerr == nil) {
			t.Fatalf("trial %d: error divergence on %q: %v vs %v", trial, query, nerr, cerr)
		}
		if nerr != nil {
			continue
		}
		if nv.String() != cv.String() {
			t.Fatalf("trial %d: divergence on %q:\n  naive      %s\n  cost-based %s",
				trial, query, nv, cv)
		}
	}
}

// TestPaperListingsUnchangedByStatistics re-runs every paper listing
// with statistics enabled (the default) against the same engine with
// statistics disabled. The paper's query-stability tenet extends to the
// cost model: profiling the data must never change (or break) a
// working query.
func TestPaperListingsUnchangedByStatistics(t *testing.T) {
	for _, c := range compat.PaperCases() {
		for _, compatMode := range []bool{false, true} {
			if (c.Mode == compat.Core && compatMode) || (c.Mode == compat.Compat && !compatMode) {
				continue
			}
			name := fmt.Sprintf("%s/compat=%v", c.Name, compatMode)
			t.Run(name, func(t *testing.T) {
				blind := sqlpp.New(&sqlpp.Options{Compat: compatMode, StopOnError: c.Strict, Parallelism: 1, NoStats: true})
				costed := sqlpp.New(&sqlpp.Options{Compat: compatMode, StopOnError: c.Strict, Parallelism: 1})
				for dn, srcText := range c.Data {
					if err := blind.RegisterSION(dn, srcText); err != nil {
						t.Fatal(err)
					}
					if err := costed.RegisterSION(dn, srcText); err != nil {
						t.Fatal(err)
					}
				}
				bv, berr := blind.Query(c.Query)
				cv, cerr := costed.Query(c.Query)
				if (berr == nil) != (cerr == nil) {
					t.Fatalf("error divergence: %v vs %v", berr, cerr)
				}
				if berr != nil {
					if c.ExpectError {
						return
					}
					t.Fatalf("listing failed in both engines: %v", berr)
				}
				if bv.String() != cv.String() {
					t.Fatalf("listing result changed by statistics:\n  heuristic  %s\n  cost-based %s", bv, cv)
				}
				if c.Expect != "" && !c.ExpectError {
					want := sion.MustParse(c.Expect)
					if !value.Equivalent(want, cv) {
						t.Fatalf("cost-based result diverges from the paper:\n  got  %s\n  want %s", cv, want)
					}
				}
			})
		}
	}
}
