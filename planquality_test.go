package sqlpp_test

// Plan-quality differential harness at unit scale: the same queries are
// prepared on a statistics-blind engine (the heuristic planner) and a
// statistics-aware one (the cost-based planner), executed through the
// one shared executor, and compared byte-for-byte. The cost-based plans
// must additionally carry their decisions in PlanNotes — join order
// with estimated cost, per-step cardinality estimates, build sides,
// index vetoes, and parallel chunk sizing — and EXPLAIN ANALYZE must
// surface est_rows next to the actual row counters.

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"sqlpp"
	"sqlpp/internal/value"
)

// planqRows builds n rows {<key>: 0..n-1, grp: i%2, pad}.
func planqRows(n int, key string) value.Bag {
	out := make(value.Bag, 0, n)
	for i := 0; i < n; i++ {
		t := value.EmptyTuple()
		t.Put(key, value.Int(int64(i)))
		t.Put("grp", value.Int(int64(i%2)))
		t.Put("pad", value.String(fmt.Sprintf("r%05d", i)))
		out = append(out, t)
	}
	return out
}

// planqEngines returns a heuristic and a cost-based engine over the
// adversarial three-relation catalog (3000 x 300 x 10).
func planqEngines(t *testing.T, parallelism int) (heur, cost *sqlpp.Engine) {
	t.Helper()
	heur = sqlpp.New(&sqlpp.Options{Parallelism: parallelism, NoStats: true})
	cost = sqlpp.New(&sqlpp.Options{Parallelism: parallelism})
	for name, data := range map[string]value.Bag{
		"l": planqRows(3000, "x"),
		"m": planqRows(300, "y"),
		"s": planqRows(10, "j"),
	} {
		if err := heur.Register(name, data); err != nil {
			t.Fatal(err)
		}
		if err := cost.Register(name, data); err != nil {
			t.Fatal(err)
		}
	}
	return heur, cost
}

func hasNote(notes []string, prefix string) bool {
	for _, n := range notes {
		if strings.HasPrefix(n, prefix) {
			return true
		}
	}
	return false
}

// TestPlannerDifferentialIdentity: a battery of join/filter shapes, each
// run through both planners; results must be byte-identical even where
// the physical plans diverge completely.
func TestPlannerDifferentialIdentity(t *testing.T) {
	heur, cost := planqEngines(t, 1)
	queries := []string{
		// The adversarial worst-first comma-join: written order cross-
		// products l x m before s links them.
		`SELECT VALUE {'x': l.x, 'y': m.y} FROM l AS l, m AS m, s AS s WHERE l.x = s.j AND m.y = s.j`,
		// Same chain written in the good order: reorder must not fire (or
		// must be a no-op) and results still match.
		`SELECT VALUE {'x': l.x, 'y': m.y} FROM s AS s, m AS m, l AS l WHERE l.x = s.j AND m.y = s.j`,
		// Explicit JOIN chain (flattened and reordered through ON).
		`SELECT VALUE {'x': l.x} FROM l AS l JOIN m AS m ON l.x = m.y JOIN s AS s ON m.y = s.j`,
		// Local filters the statistics can price.
		`SELECT VALUE {'x': l.x} FROM l AS l, s AS s WHERE l.x = s.j AND l.grp = 1`,
		`SELECT VALUE l.x FROM l AS l WHERE l.x >= 100 AND l.x < 140`,
		// Aggregation and DISTINCT over a reordered join.
		`SELECT s.j AS j, COUNT(*) AS n FROM l AS l, m AS m, s AS s WHERE l.x = s.j AND m.y = s.j GROUP BY s.j`,
		`SELECT DISTINCT m.grp AS g FROM m AS m, s AS s WHERE m.y = s.j`,
		// ORDER BY + LIMIT exercises errStop through the reorder buffer.
		`SELECT VALUE l.x FROM l AS l, s AS s WHERE l.x = s.j ORDER BY l.x DESC LIMIT 3`,
	}
	for _, q := range queries {
		hv, herr := heur.Query(q)
		cv, cerr := cost.Query(q)
		if (herr == nil) != (cerr == nil) {
			t.Fatalf("%q: error divergence: %v vs %v", q, herr, cerr)
		}
		if herr != nil {
			continue
		}
		if hv.String() != cv.String() {
			t.Fatalf("%q diverges:\n  heuristic  %s\n  cost-based %s", q, hv, cv)
		}
	}
}

// TestPlannerNotesSurfaceDecisions: every cost-based decision must be
// visible in PlanNotes, and the heuristic plan of the same text must
// carry none of them.
func TestPlannerNotesSurfaceDecisions(t *testing.T) {
	heur, cost := planqEngines(t, 1)
	q := `SELECT VALUE {'x': l.x} FROM l AS l, m AS m, s AS s WHERE l.x = s.j AND m.y = s.j`

	cp, err := cost.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	notes := cp.PlanNotes()
	if !hasNote(notes, "join-order(s,") {
		t.Errorf("cost-based plan does not reorder smallest-first: %v", notes)
	}
	if !hasNote(notes, "est-rows(") {
		t.Errorf("cost-based plan carries no cardinality estimates: %v", notes)
	}
	if !hasNote(notes, "build-side(") {
		t.Errorf("cost-based plan does not report its build sides: %v", notes)
	}

	hp, err := heur.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range hp.PlanNotes() {
		for _, forbidden := range []string{"join-order(", "est-rows(", "build-side(", "index-skip(", "parallel-scan(est"} {
			if strings.HasPrefix(n, forbidden) {
				t.Errorf("heuristic plan carries a statistics note: %s", n)
			}
		}
	}
}

// TestPlannerIndexVeto: statistics must veto an index probe that would
// select most of a large collection, keep one that stays selective, and
// never change results either way.
func TestPlannerIndexVeto(t *testing.T) {
	heur, cost := planqEngines(t, 1)
	for _, db := range []*sqlpp.Engine{heur, cost} {
		if err := db.CreateIndex("ixg", "l", "grp", "hash"); err != nil {
			t.Fatal(err)
		}
		if err := db.CreateIndex("ixx", "l", "x", "hash"); err != nil {
			t.Fatal(err)
		}
	}
	wide := `SELECT VALUE l.pad FROM l AS l WHERE l.grp = 1`
	narrow := `SELECT VALUE l.pad FROM l AS l WHERE l.x = 7`

	cp, err := cost.Prepare(wide)
	if err != nil {
		t.Fatal(err)
	}
	if !hasNote(cp.PlanNotes(), "index-skip(ixg") {
		t.Errorf("half-selective probe not vetoed: %v", cp.PlanNotes())
	}
	np, err := cost.Prepare(narrow)
	if err != nil {
		t.Fatal(err)
	}
	if !hasNote(np.PlanNotes(), "index-eq(ixx") || !hasNote(np.PlanNotes(), "index-est(ixx") {
		t.Errorf("selective probe lost its index or estimate: %v", np.PlanNotes())
	}
	for _, q := range []string{wide, narrow} {
		hv, herr := heur.Query(q)
		cv, cerr := cost.Query(q)
		if herr != nil || cerr != nil {
			t.Fatalf("%q: %v / %v", q, herr, cerr)
		}
		if hv.String() != cv.String() {
			t.Fatalf("%q diverges under index veto:\n  heuristic  %s\n  cost-based %s", q, hv, cv)
		}
	}
}

// TestPlannerParallelSizing: row estimates size parallel chunks (and the
// note says so); results stay identical to the heuristic engine's.
func TestPlannerParallelSizing(t *testing.T) {
	heur, cost := planqEngines(t, 4)
	q := `SELECT VALUE l.x FROM l AS l WHERE l.grp = 1`
	cp, err := cost.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if !hasNote(cp.PlanNotes(), "parallel-scan(est=3000 chunk=750)") {
		t.Errorf("parallel sizing note missing: %v", cp.PlanNotes())
	}
	hv, herr := heur.Query(q)
	cv, cerr := cost.Query(q)
	if herr != nil || cerr != nil {
		t.Fatalf("%v / %v", herr, cerr)
	}
	if hv.String() != cv.String() {
		t.Fatalf("parallel results diverge:\n  heuristic  %s\n  cost-based %s", hv, cv)
	}
}

// TestPlannerEstRowsInExplain: EXPLAIN ANALYZE on a reordered plan must
// surface est_rows counters beside the actual in/out counts, under a
// join-order group node, through the one shared executor.
func TestPlannerEstRowsInExplain(t *testing.T) {
	_, cost := planqEngines(t, 1)
	q := `SELECT VALUE {'x': l.x} FROM l AS l, m AS m, s AS s WHERE l.x = s.j AND m.y = s.j`
	p, err := cost.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	res, st, err := p.ExplainAnalyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tree := st.Render(true)
	for _, want := range []string{"join-order", "est_rows="} {
		if !strings.Contains(tree, want) {
			t.Errorf("EXPLAIN ANALYZE tree lacks %q:\n%s", want, tree)
		}
	}
	if n := len(res.(value.Bag)); n != 10 {
		t.Errorf("adversarial join returned %d rows, want 10", n)
	}
}
