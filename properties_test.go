package sqlpp_test

import (
	"fmt"
	"math/rand"
	"testing"

	"sqlpp"
	"sqlpp/internal/bench"
	"sqlpp/internal/value"
)

// queryBattery is a set of SQL++ queries exercised by the property tests
// over the HR shape (id, name, title?, projects).
var queryBattery = []string{
	`SELECT e.id, e.name AS emp_name, e.title AS title FROM emp AS e`,
	`SELECT e.id FROM emp AS e WHERE e.title = 'Manager'`,
	`SELECT e.id FROM emp AS e WHERE e.title IS NULL`,
	`SELECT e.title AS title, COUNT(*) AS n FROM emp AS e GROUP BY e.title`,
	`SELECT e.name AS emp_name, p AS proj FROM emp AS e, e.projects AS p WHERE p LIKE '%Security%'`,
	`FROM emp AS e, e.projects AS p GROUP BY p AS p GROUP AS g
	 SELECT p AS proj, (FROM g AS v SELECT VALUE v.e.name) AS names`,
	`SELECT VALUE e.name FROM emp AS e ORDER BY e.id DESC LIMIT 7`,
	`SELECT COUNT(*) AS n, MIN(e.id) AS lo, MAX(e.id) AS hi FROM emp AS e`,
}

func registerHR(t *testing.T, db *sqlpp.Engine, data value.Value) {
	t.Helper()
	if err := db.Register("emp", data); err != nil {
		t.Fatal(err)
	}
}

// TestQueryStability checks the paper's optional-schema tenet (claim C2):
// the result of a working query does not change when a schema is imposed
// on existing data.
func TestQueryStability(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		data := bench.HR(bench.HROptions{
			N: 60, ScalarProjects: true, AbsentTitleRate: 25, Seed: seed,
		})
		db := sqlpp.New(nil)
		registerHR(t, db, data)
		before := make([]value.Value, len(queryBattery))
		for i, q := range queryBattery {
			v, err := db.Query(q)
			if err != nil {
				t.Fatalf("seed %d query %d: %v", seed, i, err)
			}
			before[i] = v
		}
		if _, err := db.InferSchema("emp"); err != nil {
			t.Fatal(err)
		}
		for i, q := range queryBattery {
			after, err := db.Query(q)
			if err != nil {
				t.Fatalf("seed %d query %d with schema: %v", seed, i, err)
			}
			if !value.Equivalent(before[i], after) {
				t.Errorf("seed %d: imposing the schema changed query %d:\n  before %s\n  after  %s",
					seed, i, before[i], after)
			}
		}
	}
}

// dropNullAttrs maps a null-style value onto its missing-style image:
// every null-valued tuple attribute disappears.
func dropNullAttrs(v value.Value) value.Value {
	switch x := v.(type) {
	case *value.Tuple:
		out := value.EmptyTuple()
		for _, f := range x.Fields() {
			if f.Value.Kind() == value.KindNull {
				continue
			}
			out.Put(f.Name, dropNullAttrs(f.Value))
		}
		return out
	case value.Array:
		out := make(value.Array, len(x))
		for i, e := range x {
			out[i] = dropNullAttrs(e)
		}
		return out
	case value.Bag:
		out := make(value.Bag, len(x))
		for i, e := range x {
			out[i] = dropNullAttrs(e)
		}
		return out
	default:
		return v
	}
}

// TestNullMissingGuarantee checks §IV-B's compatibility guarantee as a
// property over generated data: for SQL queries q and null-style data d
// with missing-style image d', running in SQL-compatibility mode,
// q(d') equals q(d) after dropping null-valued attributes from q(d).
func TestNullMissingGuarantee(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		nullStyle := bench.HR(bench.HROptions{
			N: 50, ScalarProjects: true, AbsentTitleRate: 40, Seed: seed,
		})
		missingStyle := dropNullAttrs(nullStyle)

		dbNull := sqlpp.New(&sqlpp.Options{Compat: true})
		registerHR(t, dbNull, nullStyle)
		dbMissing := sqlpp.New(&sqlpp.Options{Compat: true})
		registerHR(t, dbMissing, missingStyle)

		for i, q := range queryBattery {
			qd, err := dbNull.Query(q)
			if err != nil {
				t.Fatalf("seed %d q(d) %d: %v", seed, i, err)
			}
			qdPrime, err := dbMissing.Query(q)
			if err != nil {
				t.Fatalf("seed %d q(d') %d: %v", seed, i, err)
			}
			want := dropNullAttrs(qd)
			if !value.Equivalent(want, qdPrime) {
				t.Errorf("seed %d query %d violates the guarantee:\n  q(d) sans nulls: %s\n  q(d'):           %s",
					seed, i, want, qdPrime)
			}
		}
	}
}

// dropNullAttrsSubset drops each null-valued tuple attribute with
// probability 1/2, producing data that mixes null style and missing
// style attribute by attribute.
func dropNullAttrsSubset(r *rand.Rand, v value.Value) value.Value {
	switch x := v.(type) {
	case *value.Tuple:
		out := value.EmptyTuple()
		for _, f := range x.Fields() {
			if f.Value.Kind() == value.KindNull && r.Intn(2) == 0 {
				continue
			}
			out.Put(f.Name, dropNullAttrsSubset(r, f.Value))
		}
		return out
	case value.Array:
		out := make(value.Array, len(x))
		for i, e := range x {
			out[i] = dropNullAttrsSubset(r, e)
		}
		return out
	case value.Bag:
		out := make(value.Bag, len(x))
		for i, e := range x {
			out[i] = dropNullAttrsSubset(r, e)
		}
		return out
	default:
		return v
	}
}

// TestNullMissingRandomSubset strengthens the §IV-B guarantee (claim C3)
// from the all-or-nothing image to arbitrary mixtures: convert a random
// subset of the null attributes to missing and the query results must
// still agree modulo absent null-valued attributes. Both sides project
// onto the same missing-style image, so
// dropNullAttrs(q(d)) == dropNullAttrs(q(d')) for every battery query.
func TestNullMissingRandomSubset(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(seed*31 + 7))
		d := bench.HR(bench.HROptions{
			N: 50, ScalarProjects: true, AbsentTitleRate: 40, Seed: seed,
		})
		dPrime := dropNullAttrsSubset(r, d)

		dbD := sqlpp.New(&sqlpp.Options{Compat: true})
		registerHR(t, dbD, d)
		dbPrime := sqlpp.New(&sqlpp.Options{Compat: true})
		registerHR(t, dbPrime, dPrime)

		for i, q := range queryBattery {
			qd, err := dbD.Query(q)
			if err != nil {
				t.Fatalf("seed %d q(d) %d: %v", seed, i, err)
			}
			qdPrime, err := dbPrime.Query(q)
			if err != nil {
				t.Fatalf("seed %d q(d') %d: %v", seed, i, err)
			}
			want, got := dropNullAttrs(qd), dropNullAttrs(qdPrime)
			if !value.Equivalent(want, got) {
				t.Errorf("seed %d query %d violates the subset guarantee:\n  q(d)  sans nulls: %s\n  q(d') sans nulls: %s",
					seed, i, want, got)
			}
		}
	}
}

// TestDeterminism: repeated executions of a prepared query return
// equivalent results.
func TestDeterminism(t *testing.T) {
	db := sqlpp.New(nil)
	registerHR(t, db, bench.HR(bench.HROptions{N: 40, ScalarProjects: true, Seed: 9}))
	for _, q := range queryBattery {
		p, err := db.Prepare(q)
		if err != nil {
			t.Fatal(err)
		}
		a, err := p.Exec()
		if err != nil {
			t.Fatal(err)
		}
		b, err := p.Exec()
		if err != nil {
			t.Fatal(err)
		}
		if !value.Equivalent(a, b) {
			t.Errorf("query %q not deterministic", q)
		}
	}
}

// TestQueriesDoNotMutateData: executing queries leaves the registered
// values untouched.
func TestQueriesDoNotMutateData(t *testing.T) {
	data := bench.HR(bench.HROptions{N: 30, ScalarProjects: true, AbsentTitleRate: 20, Seed: 4})
	snapshot := value.Clone(data)
	db := sqlpp.New(nil)
	registerHR(t, db, data)
	for _, q := range queryBattery {
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := db.Lookup("emp")
	if !value.DeepEqual(snapshot, got) {
		t.Error("query execution mutated the registered data")
	}
}

// TestRandomizedDataNeverPanics: the engine must fail gracefully (or
// succeed) on arbitrary well-formed data, in both typing modes.
func TestRandomizedDataNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	queries := []string{
		`SELECT VALUE x FROM t AS x`,
		`SELECT VALUE 2 * x FROM t AS x`,
		`SELECT VALUE x.a FROM t AS x`,
		`SELECT VALUE y FROM t AS x, x.a AS y`,
		`SELECT VALUE x FROM t AS x ORDER BY x`,
		`SELECT COUNT(*) AS n FROM t AS x GROUP BY x.k`,
		`PIVOT x.v AT x.k FROM t AS x`,
		`SELECT VALUE v FROM t AS x, UNPIVOT x AS v AT n`,
	}
	for i := 0; i < 60; i++ {
		data := randomMess(r, 3)
		for _, strict := range []bool{false, true} {
			db := sqlpp.New(&sqlpp.Options{StopOnError: strict})
			if err := db.Register("t", data); err != nil {
				t.Fatal(err)
			}
			for _, q := range queries {
				_, _ = db.Query(q) // errors fine; panics are not
			}
		}
	}
}

func randomMess(r *rand.Rand, depth int) value.Value {
	max := 8
	if depth <= 0 {
		max = 5
	}
	switch r.Intn(max) {
	case 0:
		return value.Null
	case 1:
		return value.Bool(r.Intn(2) == 0)
	case 2:
		return value.Int(r.Int63n(100))
	case 3:
		return value.Float(r.NormFloat64())
	case 4:
		return value.String(fmt.Sprintf("s%d", r.Intn(10)))
	case 5:
		out := make(value.Array, r.Intn(5))
		for i := range out {
			out[i] = randomMess(r, depth-1)
		}
		return out
	case 6:
		out := make(value.Bag, r.Intn(5))
		for i := range out {
			out[i] = randomMess(r, depth-1)
		}
		return out
	default:
		tup := value.EmptyTuple()
		for i, n := 0, r.Intn(4); i < n; i++ {
			tup.Put([]string{"a", "k", "v", "x"}[r.Intn(4)], randomMess(r, depth-1))
		}
		return tup
	}
}
