package sqlpp

import (
	"fmt"
	"io"

	"sqlpp/internal/datafmt"
	"sqlpp/internal/types"
	"sqlpp/internal/value"
)

// Schema support on the Engine. SQL++ schemas are optional: declaring one
// turns on registration-time validation and unqualified-name
// disambiguation, and — per the paper's query stability tenet — never
// changes the result of a working query.

// DeclareSchema declares the type of a named value using the Hive-style
// DDL of the paper's Listing 5 (CREATE TABLE ... with UNIONTYPE et al.).
// It returns the declared table name. If a value is already registered
// under that name it is validated immediately.
func (e *Engine) DeclareSchema(ddl string) (string, error) {
	name, err := e.schema().DeclareDDL(ddl)
	if err != nil {
		return "", err
	}
	if v, ok := e.cat.LookupValue(name); ok {
		if err := e.schema().Check(name, v); err != nil {
			return name, err
		}
	}
	return name, nil
}

// DeclareType declares the type of a named value directly.
func (e *Engine) DeclareType(name string, t types.Type) error {
	e.schema().Declare(name, t)
	if v, ok := e.cat.LookupValue(name); ok {
		return e.schema().Check(name, v)
	}
	return nil
}

// InferSchema infers and declares the type of an already-registered
// named value from its data, returning the inferred type.
func (e *Engine) InferSchema(name string) (types.Type, error) {
	v, ok := e.cat.LookupValue(name)
	if !ok {
		return nil, fmt.Errorf("sqlpp: no named value %q", name)
	}
	t := types.Infer(v)
	e.schema().Declare(name, t)
	return t, nil
}

// SchemaOf returns the declared type of a named value, if any.
func (e *Engine) SchemaOf(name string) (types.Type, bool) {
	if e.types == nil {
		return nil, false
	}
	return e.types.TypeOf(name)
}

// RegisterChecked registers a named value, validating it against its
// declared schema first (if one exists).
func (e *Engine) RegisterChecked(name string, v value.Value) error {
	if err := e.schema().Check(name, v); err != nil {
		return err
	}
	return e.cat.Register(name, v)
}

// Data-loading helpers: every format decodes to the same logical values,
// so queries are format-independent (§I).

// RegisterJSON registers a JSON document; a top-level array registers as
// a bag of documents.
func (e *Engine) RegisterJSON(name string, r io.Reader) error {
	v, err := datafmt.DecodeJSONBag(r)
	if err != nil {
		return fmt.Errorf("sqlpp: register %s: %w", name, err)
	}
	return e.cat.Register(name, v)
}

// RegisterJSONLines registers newline-delimited JSON documents as a bag.
func (e *Engine) RegisterJSONLines(name string, r io.Reader) error {
	v, err := datafmt.DecodeJSONLines(r)
	if err != nil {
		return fmt.Errorf("sqlpp: register %s: %w", name, err)
	}
	return e.cat.Register(name, v)
}

// RegisterCSV registers CSV rows as a bag of tuples; the first row names
// the attributes and scalar types are inferred.
func (e *Engine) RegisterCSV(name string, r io.Reader) error {
	v, err := datafmt.DecodeCSV(r, datafmt.CSVOptions{})
	if err != nil {
		return fmt.Errorf("sqlpp: register %s: %w", name, err)
	}
	return e.cat.Register(name, v)
}

// RegisterCBOR registers a CBOR data item.
func (e *Engine) RegisterCBOR(name string, data []byte) error {
	v, err := datafmt.DecodeCBOR(data)
	if err != nil {
		return fmt.Errorf("sqlpp: register %s: %w", name, err)
	}
	return e.cat.Register(name, v)
}
