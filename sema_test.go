package sqlpp_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"sqlpp"
	"sqlpp/internal/compat"
	"sqlpp/internal/eval"
)

// The analyzer/runtime agreement battery (§VI): the static analyzer's
// verdicts must agree with what execution actually does, in both typing
// modes, over the whole conformance suite running on schema-conforming
// data (each named value's schema is inferred from the value itself, so
// the data conforms by construction).
//
// The agreement contract:
//
//   - Permissive mode: the analyzer never emits error-severity
//     diagnostics for a query that compiles — type faults yield MISSING
//     at runtime, so they are warnings.
//   - Stop-on-error mode, analyzer clean: execution must not fail with
//     a dynamic type error. The analyzer only reports provable faults,
//     so a clean bill means the runtime cannot trip over a typed
//     expression the analyzer saw.
//   - Stop-on-error mode, analyzer error: the flagged fault is provable
//     from the schema, so executing over conforming data must fail.

// semaEngine builds an engine for a compat case with schemas inferred
// from the case's data.
func semaEngine(t *testing.T, c *compat.Case, compatMode bool) *sqlpp.Engine {
	t.Helper()
	db := sqlpp.New(&sqlpp.Options{Compat: compatMode, StopOnError: c.Strict})
	for name, src := range c.Data {
		if err := db.RegisterSION(name, src); err != nil {
			t.Fatalf("%s: register %s: %v", c.Name, name, err)
		}
		if _, err := db.InferSchema(name); err != nil {
			t.Fatalf("%s: infer schema %s: %v", c.Name, name, err)
		}
	}
	return db
}

func caseModes(c *compat.Case) []bool {
	switch c.Mode {
	case compat.Core:
		return []bool{false}
	case compat.Compat:
		return []bool{true}
	default:
		return []bool{false, true}
	}
}

func TestSemaAgreesWithRuntime(t *testing.T) {
	for _, c := range compat.Suite() {
		for _, compatMode := range caseModes(c) {
			db := semaEngine(t, c, compatMode)
			p, err := db.Prepare(c.Query)
			if err != nil {
				// Compile-time rejection (parse or resolution): the
				// analyzer never ran, so there is nothing to agree on.
				continue
			}
			diags := p.Diagnostics()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_, execErr := p.ExecContext(ctx)
			cancel()

			var typeErr *eval.TypeError
			isTypeFault := errors.As(execErr, &typeErr)

			if !c.Strict && sqlpp.HasErrors(diags) {
				t.Errorf("%s [compat=%v]: permissive mode produced error-severity diagnostics: %v",
					c.Name, compatMode, diags)
			}
			if c.Strict && !sqlpp.HasErrors(diags) && isTypeFault {
				t.Errorf("%s [compat=%v]: analyzer clean but execution hit a type error: %v\nquery: %s",
					c.Name, compatMode, execErr, c.Query)
			}
			if c.Strict && sqlpp.HasErrors(diags) && execErr == nil {
				t.Errorf("%s [compat=%v]: analyzer reported errors but execution succeeded\ndiags: %v\nquery: %s",
					c.Name, compatMode, diags, c.Query)
			}
		}
	}
}

// TestPaperListingsVetClean is the acceptance gate: every paper listing
// passes the analyzer with zero error-severity diagnostics, in its
// case's modes, with the data's own inferred schema imposed — C2 made
// statically checkable.
func TestPaperListingsVetClean(t *testing.T) {
	for _, c := range compat.PaperCases() {
		if c.ExpectError {
			continue
		}
		for _, compatMode := range caseModes(c) {
			db := semaEngine(t, c, compatMode)
			p, err := db.Prepare(c.Query)
			if err != nil {
				t.Errorf("%s [compat=%v]: prepare failed: %v", c.Name, compatMode, err)
				continue
			}
			if diags := p.Diagnostics(); sqlpp.HasErrors(diags) {
				t.Errorf("%s [compat=%v]: error-severity diagnostics on a paper listing: %v",
					c.Name, compatMode, diags)
			}
		}
	}
}

// TestVetOptionRejects exercises Options.Vet end to end: a provable
// strict-mode fault is rejected at prepare time with a *VetError, while
// the same query in permissive mode (fault downgraded to warning) and a
// clean query in strict mode both prepare fine.
func TestVetOptionRejects(t *testing.T) {
	const faulty = `SELECT VALUE 2 * e.name FROM emp AS e`
	mk := func(strict bool) *sqlpp.Engine {
		db := sqlpp.New(&sqlpp.Options{StopOnError: strict, Vet: true})
		if err := db.RegisterSION("emp", `{{ {'id':1,'name':'Ada'} }}`); err != nil {
			t.Fatal(err)
		}
		if _, err := db.DeclareSchema(`CREATE TABLE emp (id INT, name STRING);`); err != nil {
			t.Fatal(err)
		}
		return db
	}

	_, err := mk(true).Prepare(faulty)
	var vetErr *sqlpp.VetError
	if !errors.As(err, &vetErr) {
		t.Fatalf("strict vet: want *VetError, got %v", err)
	}
	if !sqlpp.HasErrors(vetErr.Diagnostics) {
		t.Fatalf("VetError should carry error diagnostics, got %v", vetErr.Diagnostics)
	}

	if _, err := mk(false).Prepare(faulty); err != nil {
		t.Fatalf("permissive vet must not reject (fault is a warning): %v", err)
	}
	if _, err := mk(true).Prepare(`SELECT VALUE e.id FROM emp AS e`); err != nil {
		t.Fatalf("clean strict query must prepare under vet: %v", err)
	}
}

// TestDiagnosticsLazyAndCached: diagnostics are computed once and the
// returned slice is the caller's to mutate.
func TestDiagnosticsCached(t *testing.T) {
	db := sqlpp.New(nil)
	if err := db.RegisterSION("t", `{{ {'v':1} }}`); err != nil {
		t.Fatal(err)
	}
	p, err := db.Prepare(`FROM t AS unused_row SELECT VALUE 1`)
	if err != nil {
		t.Fatal(err)
	}
	a := p.Diagnostics()
	if len(a) == 0 {
		t.Fatal("want an unused-binding warning")
	}
	a[0].Msg = "mutated"
	b := p.Diagnostics()
	if b[0].Msg == "mutated" {
		t.Fatal("Diagnostics must return a copy")
	}
}

// TestPreparedParamsDiagnostics: parameters act as bound variables of
// unknown type.
func TestPreparedParamsDiagnostics(t *testing.T) {
	db := sqlpp.New(nil)
	if err := db.RegisterSION("t", `{{ {'v':1} }}`); err != nil {
		t.Fatal(err)
	}
	p, err := db.PrepareParams(`SELECT VALUE r.v + $min FROM t AS r`, "$min")
	if err != nil {
		t.Fatal(err)
	}
	if diags := p.Diagnostics(); len(diags) != 0 {
		t.Fatalf("parameterized query should be clean, got %v", diags)
	}
}
