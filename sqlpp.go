// Package sqlpp is a complete implementation of the SQL++ query language
// described in "SQL++: We Can Finally Relax!" (Carey et al., ICDE 2024):
// a backward-compatible extension of SQL for nested, heterogeneous,
// schema-optional data.
//
// The engine evaluates SQL++ over an in-memory catalog of named values.
// Data loads from JSON, CSV, CBOR, or the paper's object notation, and
// every query runs identically regardless of the source format.
//
// Quick start:
//
//	db := sqlpp.New(nil)
//	_ = db.RegisterSION("hr.emp", `{{ {'name':'Ada','salary':120} }}`)
//	v, _ := db.Query("SELECT e.name FROM hr.emp AS e WHERE e.salary > 100")
//	fmt.Println(v) // {{ {'name': 'Ada'} }}
package sqlpp

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"sqlpp/internal/ast"
	"sqlpp/internal/catalog"
	"sqlpp/internal/eval"
	"sqlpp/internal/funcs"
	"sqlpp/internal/index"
	"sqlpp/internal/parser"
	"sqlpp/internal/plan"
	"sqlpp/internal/rewrite"
	"sqlpp/internal/sema"
	"sqlpp/internal/sion"
	"sqlpp/internal/stats"
	"sqlpp/internal/types"
	"sqlpp/internal/value"
)

// Options configures an Engine. The zero value is the paper's flexible
// default: permissive typing and full composability (no SQL-compat
// coercions).
type Options struct {
	// Compat is the paper's SQL compatibility flag (§I): sugar SELECT
	// subqueries coerce by context, MISSING behaves like NULL wherever
	// SQL maps NULL to a non-null result, and IS NULL matches MISSING.
	Compat bool
	// StopOnError selects the stop-on-error typing mode (§IV): the first
	// dynamic type error aborts the query instead of yielding MISSING.
	StopOnError bool
	// MaxCollectionSize caps materialized intermediate results; 0 means
	// unlimited.
	MaxCollectionSize int
	// MaterializeClauses switches the executor from the streaming clause
	// pipeline to full clause-boundary materialization. Semantics are
	// identical; the option exists for the execution-strategy ablation
	// (see EXPERIMENTS.md).
	MaterializeClauses bool
	// DisableOptimizer skips the physical optimization pass (predicate
	// pushdown, source hoisting, hash joins, parallel scans), executing
	// every block with the naive clause pipeline. Results are identical;
	// the option exists for debugging and A/B measurement.
	DisableOptimizer bool
	// Parallelism bounds the worker pool of parallel outer scans. Zero
	// selects GOMAXPROCS; 1 restores fully sequential execution.
	Parallelism int
	// NoCompile disables the closure-compilation pass: expressions the
	// optimizer would lower to prepared closures evaluate through the
	// tree-walking interpreter instead, and fused batch scans revert to
	// row-at-a-time production. Results are identical; the option exists
	// for debugging and A/B measurement (see BENCH_vector.json).
	NoCompile bool
	// NoStats disables statistics-driven cost-based planning (join
	// reordering, index-vs-scan vetoes, parallel sizing, est_rows
	// annotations); plans fall back to the pure heuristics. Results are
	// identical; the option exists for debugging and the planner-quality
	// A/B harness (see BENCH_planner.json).
	NoStats bool
	// Limits is the per-query resource budget enforced by the governor:
	// output rows, materialized values/bytes, nesting depth, and wall
	// time. The zero value means unlimited and costs nothing per row; a
	// query exceeding any budget aborts with a *ResourceError.
	Limits Limits
	// Vet runs the static semantic analyzer at prepare time and rejects
	// queries carrying error-severity diagnostics with a *VetError. Off
	// by default per the paper's query-stability tenet: imposing a
	// schema never changes (or rejects) a working query unless asked.
	// When off, analysis costs nothing until Diagnostics() is called.
	Vet bool
}

// Diagnostic is one static-analyzer finding; see Prepared.Diagnostics.
type Diagnostic = sema.Diagnostic

// Severity grades a Diagnostic.
type Severity = sema.Severity

// Diagnostic severities.
const (
	SevWarning = sema.Warning
	SevError   = sema.Error
)

// HasErrors reports whether any diagnostic is error-severity.
func HasErrors(diags []Diagnostic) bool { return sema.HasErrors(diags) }

// VetError reports that Options.Vet rejected a query because the static
// analyzer found error-severity diagnostics. Match with errors.As to
// inspect the findings.
type VetError struct {
	Diagnostics []Diagnostic
}

// Error summarizes the error-severity findings.
func (e *VetError) Error() string {
	var sb strings.Builder
	sb.WriteString("sqlpp: query rejected by vet:")
	for _, d := range e.Diagnostics {
		if d.Severity == SevError {
			sb.WriteString(" [")
			sb.WriteString(d.String())
			sb.WriteString("]")
		}
	}
	return sb.String()
}

// Limits is a per-query resource budget; see eval.Limits for the field
// semantics. Zero fields are unlimited.
type Limits = eval.Limits

// ResourceError reports a query aborted by the governor for exceeding a
// resource budget. Match with errors.As to inspect Kind/Limit/Observed.
type ResourceError = eval.ResourceError

// PanicError reports a panic recovered during query execution and
// converted into an ordinary query error; the process and all other
// queries are unaffected. Match with errors.As.
type PanicError = eval.PanicError

// The resource kinds a ResourceError can report.
const (
	ResourceRows   = eval.ResourceRows
	ResourceValues = eval.ResourceValues
	ResourceBytes  = eval.ResourceBytes
	ResourceDepth  = eval.ResourceDepth
	ResourceTime   = eval.ResourceTime
)

// Engine is a SQL++ query processor over a catalog of named values. An
// Engine is safe for concurrent queries; catalog mutation requires
// external coordination with in-flight queries only in the sense that a
// query observes the values registered when it starts resolving.
type Engine struct {
	opts  Options
	cat   *catalog.Catalog
	funcs *funcs.Registry
	types *types.Schema
}

// New returns an Engine with the given options; nil selects the
// defaults.
func New(opts *Options) *Engine {
	var o Options
	if opts != nil {
		o = *opts
	}
	return &Engine{opts: o, cat: catalog.New(), funcs: funcs.NewRegistry()}
}

// schema lazily creates the engine's schema registry.
func (e *Engine) schema() *types.Schema {
	if e.types == nil {
		e.types = types.NewSchema()
	}
	return e.types
}

// Options returns the engine's configuration.
func (e *Engine) Options() Options { return e.opts }

// WithOptions returns a new Engine sharing this engine's catalog,
// schemas, and function registry but using different options — the
// paper's compatibility flag as a per-session toggle.
func (e *Engine) WithOptions(opts Options) *Engine {
	return &Engine{opts: opts, cat: e.cat, funcs: e.funcs, types: e.types}
}

// Register binds a named value (the name may be dotted, e.g. "hr.emp").
func (e *Engine) Register(name string, v value.Value) error {
	return e.cat.Register(name, v)
}

// RegisterSION parses src in the paper's object notation and registers it
// under name.
func (e *Engine) RegisterSION(name, src string) error {
	v, err := sion.Parse(src)
	if err != nil {
		return fmt.Errorf("sqlpp: register %s: %w", name, err)
	}
	return e.cat.Register(name, v)
}

// Append adds the elements of v (or v itself, when it is not a
// collection) to the collection registered under name, preserving its
// array/bag kind. Secondary indexes over the collection are extended
// incrementally — appending k elements costs O(k log n), not a rebuild.
func (e *Engine) Append(name string, v value.Value) error {
	elems, ok := value.Elements(v)
	if !ok {
		elems = []value.Value{v}
	}
	if err := e.cat.Append(name, elems, eval.NewGovernor(e.opts.Limits)); err != nil {
		return fmt.Errorf("sqlpp: append %s: %w", name, err)
	}
	return nil
}

// AppendSION parses src in the paper's object notation and appends it
// under name; see Append.
func (e *Engine) AppendSION(name, src string) error {
	v, err := sion.Parse(src)
	if err != nil {
		return fmt.Errorf("sqlpp: append %s: %w", name, err)
	}
	return e.Append(name, v)
}

// Drop removes a named value (and any indexes declared over it).
func (e *Engine) Drop(name string) { e.cat.Drop(name) }

// IndexInfo describes one secondary index.
type IndexInfo struct {
	Name       string `json:"name"`
	Collection string `json:"collection"`
	Path       string `json:"path"`
	Kind       string `json:"kind"`
	// Entries is the number of elements the index covers; Keys, Missing,
	// and Null break it down into distinct probeable keys and the two
	// absent-key slots (rows an index probe can never return, because
	// equality/range against MISSING or NULL is never TRUE).
	Entries int `json:"entries"`
	Keys    int `json:"keys"`
	Missing int `json:"missing"`
	Null    int `json:"null"`
}

// CreateIndex declares a secondary index named name over the registered
// collection, keyed by the dotted path (which may step into nested
// tuples, e.g. "addr.zip"). kind is "hash" (equality probes, the
// default) or "ordered" (equality and range probes). The build charges
// the engine's resource limits; elements whose key path is MISSING,
// NULL, or a permissive navigation fault are filed in dedicated slots
// so indexed execution stays bit-identical to scanning.
func (e *Engine) CreateIndex(name, collection, path, kind string) error {
	k, err := index.ParseKind(kind)
	if err != nil {
		return fmt.Errorf("sqlpp: create index %s: %w", name, err)
	}
	spec := index.Spec{Name: name, Collection: collection, Path: strings.Split(path, "."), Kind: k}
	if err := e.cat.CreateIndex(spec, eval.NewGovernor(e.opts.Limits)); err != nil {
		return fmt.Errorf("sqlpp: create index %s: %w", name, err)
	}
	return nil
}

// DropIndex removes a secondary index, reporting whether it existed.
func (e *Engine) DropIndex(name string) bool { return e.cat.DropIndex(name) }

// Indexes lists the declared secondary indexes, sorted by name.
func (e *Engine) Indexes() []IndexInfo {
	ixs := e.cat.Indexes()
	out := make([]IndexInfo, len(ixs))
	for i, ix := range ixs {
		sp := ix.Spec()
		keys, missing, null := ix.Slots()
		out[i] = IndexInfo{
			Name:       sp.Name,
			Collection: sp.Collection,
			Path:       sp.PathString(),
			Kind:       sp.Kind.String(),
			Entries:    ix.Len(),
			Keys:       keys,
			Missing:    missing,
			Null:       null,
		}
	}
	return out
}

// IndexEpoch returns the catalog's mutation counter. It changes on
// every index create/drop, data registration, and shard-topology
// change, so callers caching compiled plans (the server and the shard
// coordinator do) can fold it into their cache keys.
func (e *Engine) IndexEpoch() int64 { return e.cat.Epoch() }

// ShardMeta records how a collection is partitioned across a
// coordinator's shard fleet (see internal/shard). It lives in the
// catalog so distributions bump the epoch like any other catalog
// mutation.
type ShardMeta = catalog.ShardMeta

// SetShardMeta records a collection's shard topology, bumping the
// catalog epoch.
func (e *Engine) SetShardMeta(name string, m ShardMeta) error {
	return e.cat.SetShardMeta(name, m)
}

// ShardMetaFor reports the shard topology recorded for name.
func (e *Engine) ShardMetaFor(name string) (ShardMeta, bool) {
	return e.cat.ShardMetaFor(name)
}

// ShardMetas returns all recorded shard topologies by collection name.
func (e *Engine) ShardMetas() map[string]ShardMeta { return e.cat.ShardMetas() }

// CollectionStats pairs a collection name with its statistics summary.
type CollectionStats struct {
	Collection string        `json:"collection"`
	Stats      stats.Summary `json:"stats"`
}

// Stats lists the per-collection statistics snapshots the planner's
// cost-based decisions draw from, sorted by collection name.
// Collections whose statistics build failed (resource budget, injected
// fault) are absent — the planner treats them heuristically.
func (e *Engine) Stats() []CollectionStats {
	var out []CollectionStats
	for _, name := range e.cat.Names() {
		st := e.cat.StatsFor(name)
		if st == nil {
			continue
		}
		out = append(out, CollectionStats{Collection: name, Stats: st.Summarize()})
	}
	return out
}

// Names lists the registered named values, sorted.
func (e *Engine) Names() []string { return e.cat.Names() }

// Lookup returns a registered named value.
func (e *Engine) Lookup(name string) (value.Value, bool) { return e.cat.LookupValue(name) }

// Prepared is a compiled query, reusable across executions.
type Prepared struct {
	engine    *Engine
	core      ast.Expr
	planNotes []string
	params    []string

	// Diagnostics are computed lazily and cached: a Prepared that never
	// asks for them pays nothing, and concurrent callers share one
	// analysis (the analyzer reads the immutable core tree only).
	diagOnce sync.Once
	diags    []Diagnostic
}

// Prepare parses, rewrites to SQL++ Core, resolves a query against the
// engine's catalog, and runs the physical optimization pass. With
// Options.Vet set it additionally runs the static semantic analyzer and
// rejects the query when any finding is error-severity.
func (e *Engine) Prepare(query string) (*Prepared, error) {
	tree, err := parser.Parse(query)
	if err != nil {
		return nil, err
	}
	ropts := rewrite.Options{
		Compat: e.opts.Compat,
		Names:  e.cat,
	}
	if e.types != nil {
		ropts.Schema = e.types
	}
	core, err := rewrite.Rewrite(tree, ropts)
	if err != nil {
		return nil, err
	}
	p := &Prepared{engine: e, core: core, planNotes: e.optimize(core)}
	if err := e.vet(p); err != nil {
		return nil, err
	}
	return p, nil
}

// vet enforces Options.Vet on a freshly compiled query.
func (e *Engine) vet(p *Prepared) error {
	if !e.opts.Vet {
		return nil
	}
	if diags := p.Diagnostics(); HasErrors(diags) {
		return &VetError{Diagnostics: diags}
	}
	return nil
}

// Diagnostics runs the static semantic analyzer over the compiled query
// and returns its findings, sorted by position: scope hygiene (unused
// and shadowed bindings), schema-aware type faults, and expressions
// statically guaranteed to yield MISSING. In stop-on-error mode type
// faults are error-severity (the runtime would abort); in permissive
// mode they are warnings (the runtime yields MISSING). The analysis runs
// once, lazily, and is cached; executions never pay for it.
func (p *Prepared) Diagnostics() []Diagnostic {
	p.diagOnce.Do(func() {
		p.diags = sema.Analyze(p.core, sema.Options{
			StopOnError: p.engine.opts.StopOnError,
			Schema:      p.engine.types,
			Params:      p.params,
		})
	})
	out := make([]Diagnostic, len(p.diags))
	copy(out, p.diags)
	return out
}

// optimize runs the physical optimization pass over a rewritten Core
// tree. It runs at prepare time, before the Prepared is shared, so the
// annotations it writes are immutable during execution.
func (e *Engine) optimize(core ast.Expr) []string {
	if e.opts.DisableOptimizer {
		return nil
	}
	mode := eval.Permissive
	if e.opts.StopOnError {
		mode = eval.StopOnError
	}
	parallelism := e.opts.Parallelism
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	po := plan.OptOptions{
		Mode:        mode,
		Indexes:     e.cat,
		Compat:      e.opts.Compat,
		Compile:     !e.opts.NoCompile,
		Funcs:       e.funcs,
		Parallelism: parallelism,
	}
	if !e.opts.NoStats {
		po.Stats = e.cat
	}
	return plan.Optimize(core, po)
}

// PlanNotes describes the physical optimizations applied to the prepared
// query, one note per rewrite that fired; empty when the query runs on
// the naive pipeline.
func (p *Prepared) PlanNotes() []string {
	notes := make([]string, len(p.planNotes))
	copy(notes, p.planNotes)
	return notes
}

// Core returns the SQL++ Core form of the prepared query as text — the
// paper's "syntactic sugar" rewritings made visible.
func (p *Prepared) Core() string { return ast.Format(p.core) }

// Check statically checks the prepared query against the engine's
// declared schemas (§IV: the optional schema enables static type
// checking). Findings are advisory: the dynamic semantics would produce
// MISSING where the checker predicts a fault. Without declared schemas
// the checker knows nothing and reports nothing.
func (p *Prepared) Check() []types.Problem {
	return types.CheckQuery(p.core, p.engine.schema())
}

// Exec runs the prepared query and returns its result value. A Prepared
// is immutable after compilation and every execution gets a fresh
// evaluation context and environment, so one Prepared may be executed
// from many goroutines concurrently — the property the server's plan
// cache relies on.
func (p *Prepared) Exec() (value.Value, error) {
	return p.ExecContext(context.Background())
}

// ExecContext runs the prepared query under ctx: cancellation or
// deadline expiry cooperatively stops the plan's row-production loops,
// so even a runaway cross join terminates promptly. The returned error
// wraps ctx.Err() (match it with errors.Is).
func (p *Prepared) ExecContext(ctx context.Context) (value.Value, error) {
	ec := p.engine.newContext(ctx)
	return runProtected(ec, eval.NewEnv(), p.core)
}

// runProtected executes the plan with a panic barrier: a panic anywhere
// in evaluation (a broken builtin, a bug in an operator) becomes that
// query's *PanicError instead of killing the process. The recover sits
// at the outermost frame of the execution, so no partial state escapes —
// every execution's mutable state is context- and env-local.
func runProtected(ec *eval.Context, env *eval.Env, core ast.Expr) (v value.Value, err error) {
	defer func() {
		if p := recover(); p != nil {
			v, err = nil, ec.Recovered(p)
		}
	}()
	return plan.Run(ec, env, core)
}

// OpStats is one operator's runtime statistics in an EXPLAIN ANALYZE
// tree: rows in/out, wall time, operator-specific counters, and the
// operators it feeds from as children. Times are inclusive — the
// pipeline is push-style, so a FROM step's span covers the downstream
// clauses it drives. Render formats the tree as indented text; the
// struct marshals directly to JSON for the HTTP API.
type OpStats = eval.StatsSnapshot

// ExplainAnalyze executes the prepared query with per-operator
// instrumentation and returns the result alongside the stats tree. The
// result is byte-identical to ExecContext's — instrumentation only
// counts, it never changes semantics. Instrumented execution is slower
// (atomic counters on every row); plain ExecContext pays nothing for
// the feature's existence.
func (p *Prepared) ExplainAnalyze(ctx context.Context) (value.Value, *OpStats, error) {
	ec := p.engine.newContext(ctx)
	ec.Stats = eval.NewStatsSink()
	v, err := runProtected(ec, eval.NewEnv(), p.core)
	if err != nil {
		return nil, nil, err
	}
	return v, ec.Stats.Root.Snapshot(), nil
}

// newContext builds the per-execution evaluation context. Contexts are
// never shared between executions: all mutable evaluation state lives
// here or in the Env, which is what makes concurrent execution of a
// shared Prepared sound.
func (e *Engine) newContext(ctx context.Context) *eval.Context {
	mode := eval.Permissive
	if e.opts.StopOnError {
		mode = eval.StopOnError
	}
	parallelism := e.opts.Parallelism
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	ec := &eval.Context{
		Mode:               mode,
		Compat:             e.opts.Compat,
		Names:              e.cat,
		Funcs:              e.funcs,
		Run:                plan.Run,
		MaxCollectionSize:  e.opts.MaxCollectionSize,
		MaterializeClauses: e.opts.MaterializeClauses,
		Parallelism:        parallelism,
	}
	// Only install contexts that can actually fire, so queries run with
	// context.Background() skip the per-row poll entirely.
	if ctx != nil && ctx.Done() != nil {
		ec.Ctx = ctx
	}
	// NewGovernor returns nil for an all-zero budget, so unlimited
	// engines keep the nil fast path at every charge site.
	ec.Gov = eval.NewGovernor(e.opts.Limits)
	return ec
}

// Query parses, compiles, and executes a SQL++ query.
func (e *Engine) Query(query string) (value.Value, error) {
	return e.QueryContext(context.Background(), query)
}

// QueryContext parses, compiles, and executes a SQL++ query under ctx;
// see Prepared.ExecContext for the cancellation semantics.
func (e *Engine) QueryContext(ctx context.Context, query string) (value.Value, error) {
	p, err := e.Prepare(query)
	if err != nil {
		return nil, err
	}
	return p.ExecContext(ctx)
}

// MustQuery is Query but panics on error; intended for examples and
// tests.
func (e *Engine) MustQuery(query string) value.Value {
	v, err := e.Query(query)
	if err != nil {
		panic(err)
	}
	return v
}

// ParseValue parses a value in the paper's object notation.
func ParseValue(src string) (value.Value, error) { return sion.Parse(src) }

// MustParseValue is ParseValue but panics on error.
func MustParseValue(src string) value.Value { return sion.MustParse(src) }
