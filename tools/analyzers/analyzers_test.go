package main

import (
	"go/parser"
	"go/token"
	"testing"
)

// parseSrc builds a srcFile from an inline source, under the given
// repo-relative path (the checks scope themselves by path).
func parseSrc(t *testing.T, path, src string) *srcFile {
	t.Helper()
	fset := token.NewFileSet()
	tree, err := parser.ParseFile(fset, path, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return &srcFile{path: path, fset: fset, ast: tree}
}

func TestFaultgateUnguardedFire(t *testing.T) {
	f := parseSrc(t, "internal/plan/x.go", `package plan
import "sqlpp/internal/faultinject"
func scan() error { return faultinject.Fire(faultinject.ScanNext) }
`)
	if got := faultgate(f); len(got) != 1 {
		t.Fatalf("want 1 finding for unguarded Fire, got %v", got)
	}
}

func TestFaultgateGuardedFireClean(t *testing.T) {
	f := parseSrc(t, "internal/plan/x.go", `package plan
import "sqlpp/internal/faultinject"
func scan() error {
	if faultinject.Enabled {
		if err := faultinject.Fire(faultinject.ScanNext); err != nil { return err }
	}
	return nil
}
`)
	if got := faultgate(f); len(got) != 0 {
		t.Fatalf("guarded Fire should be clean, got %v", got)
	}
}

func TestFaultgateEnabledNeedsBuildTag(t *testing.T) {
	f := parseSrc(t, "internal/faultinject/extra.go", `package faultinject
const Enabled = true
`)
	if got := faultgate(f); len(got) != 1 {
		t.Fatalf("tag-free Enabled declaration should be flagged, got %v", got)
	}
	f = parseSrc(t, "internal/faultinject/extra.go", `//go:build chaos

package faultinject
const Enabled = true
`)
	if got := faultgate(f); len(got) != 0 {
		t.Fatalf("tagged Enabled declaration should be clean, got %v", got)
	}
}

func TestGovchargeUnchargedLoop(t *testing.T) {
	f := parseSrc(t, "internal/plan/x.go", `package plan
func collect(vs []int) []int {
	var out []int
	for _, v := range vs { out = append(out, v) }
	return out
}
`)
	got := govcharge(f)
	if len(got) != 1 {
		t.Fatalf("want 1 finding for uncharged accumulation, got %v", got)
	}
}

func TestGovchargeChargedLoopClean(t *testing.T) {
	f := parseSrc(t, "internal/plan/x.go", `package plan
func collect(g gov, vs []int) ([]int, error) {
	var out []int
	for _, v := range vs {
		if err := g.ChargeValues("collect", 1, nil); err != nil { return nil, err }
		out = append(out, v)
	}
	return out, nil
}
`)
	if got := govcharge(f); len(got) != 0 {
		t.Fatalf("charged accumulation should be clean, got %v", got)
	}
}

func TestGovchargeMarkerClean(t *testing.T) {
	f := parseSrc(t, "internal/plan/x.go", `package plan
// collect is a helper.
//
// governor:bounded by the input, charged upstream.
func collect(vs []int) []int {
	var out []int
	for _, v := range vs { out = append(out, v) }
	return out
}
`)
	if got := govcharge(f); len(got) != 0 {
		t.Fatalf("marked accumulation should be clean, got %v", got)
	}
}

func TestGovchargeScopedToPlan(t *testing.T) {
	f := parseSrc(t, "internal/server/x.go", `package server
func collect(vs []int) []int {
	var out []int
	for _, v := range vs { out = append(out, v) }
	return out
}
`)
	if got := govcharge(f); len(got) != 0 {
		t.Fatalf("govcharge must only apply to internal/plan, got %v", got)
	}
}

func TestGovchargeCoversCompile(t *testing.T) {
	f := parseSrc(t, "internal/eval/compile.go", `package eval
func compileThing(xs []int) func() []int {
	return func() []int {
		var out []int
		for _, x := range xs { out = append(out, x) }
		return out
	}
}
`)
	if got := govcharge(f); len(got) != 1 {
		t.Fatalf("want 1 finding for uncharged accumulation in compile.go, got %v", got)
	}
}

func TestCompilepureNestedLiteral(t *testing.T) {
	f := parseSrc(t, "internal/eval/compile.go", `package eval
func compileThing() func() func() int {
	return func() func() int {
		return func() int { return 1 }
	}
}
`)
	got := compilepure(f)
	if len(got) != 1 {
		t.Fatalf("want 1 finding for nested func literal, got %v", got)
	}
}

func TestCompilepureTopLevelLiteralsClean(t *testing.T) {
	f := parseSrc(t, "internal/eval/compile.go", `package eval
func compileA() func() int {
	k := 1
	return func() int { return k }
}
func compileB() func() int {
	inner := compileA()
	return func() int { return inner() + 1 }
}
`)
	if got := compilepure(f); len(got) != 0 {
		t.Fatalf("one top-level literal per compileX should be clean, got %v", got)
	}
}

func TestCompilepureScopedToCompile(t *testing.T) {
	f := parseSrc(t, "internal/eval/expr.go", `package eval
func helper() func() func() int {
	return func() func() int {
		return func() int { return 1 }
	}
}
`)
	if got := compilepure(f); len(got) != 0 {
		t.Fatalf("compilepure must only apply to internal/eval/compile.go, got %v", got)
	}
}

func TestNoclock(t *testing.T) {
	f := parseSrc(t, "internal/plan/x.go", `package plan
import "time"
func stamp() time.Time { return time.Now() }
`)
	if got := noclock(f); len(got) != 1 {
		t.Fatalf("want 1 finding for time.Now in plan, got %v", got)
	}
	f = parseSrc(t, "internal/eval/stats.go", `package eval
import "time"
func stamp() time.Time { return time.Now() }
`)
	if got := noclock(f); len(got) != 0 {
		t.Fatalf("noclock must only apply to internal/plan, got %v", got)
	}
}

// TestRepoClean runs all the checks over the real tree: the repo must
// satisfy its own invariants (the same gate CI enforces).
func TestRepoClean(t *testing.T) {
	files, err := parseTree("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		for _, fd := range faultgate(f) {
			t.Errorf("%s: [%s] %s", fd.pos, fd.check, fd.msg)
		}
		for _, fd := range govcharge(f) {
			t.Errorf("%s: [%s] %s", fd.pos, fd.check, fd.msg)
		}
		for _, fd := range noclock(f) {
			t.Errorf("%s: [%s] %s", fd.pos, fd.check, fd.msg)
		}
		for _, fd := range compilepure(f) {
			t.Errorf("%s: [%s] %s", fd.pos, fd.check, fd.msg)
		}
	}
}
