package main

import (
	"go/ast"
)

// compilepure enforces the closure-compilation allocation discipline in
// internal/eval/compile.go: a compileX function may allocate exactly one
// closure — the CompiledExpr it returns — and must do all of its
// preparation (operand compilation, constant folding, matcher
// construction) before that closure is built. Structurally that means
// no func literal may nest inside another func literal: a nested
// literal would be allocated per evaluation, not per compilation,
// putting an allocation back on the per-row path the compiler exists to
// clear. The check is lexical, so a violation is visible at the exact
// line the nested closure appears.
func compilepure(f *srcFile) []finding {
	if f.path != "internal/eval/compile.go" {
		return nil
	}
	// Collect every func literal's body span, then flag literals that
	// start inside another literal's body.
	var bodies []span
	ast.Inspect(f.ast, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			bodies = append(bodies, span{fl.Body.Pos(), fl.Body.End()})
		}
		return true
	})
	var out []finding
	ast.Inspect(f.ast, func(n ast.Node) bool {
		fl, ok := n.(*ast.FuncLit)
		if !ok || !inAny(bodies, fl.Pos()) {
			return true
		}
		out = append(out, finding{
			pos:   f.fset.Position(fl.Pos()),
			check: "compilepure",
			msg: "func literal nested inside a compiled closure; closures must be " +
				"allocated at compile time only — hoist the inner literal into the compileX body",
		})
		return true
	})
	return out
}
