package main

import (
	"go/ast"
	"strings"
)

// faultgate enforces the fault-injection build discipline:
//
//  1. Outside the faultinject package itself, every call to
//     faultinject.Fire must sit inside the body of an
//     `if faultinject.Enabled { ... }` guard. Enabled is a constant, so
//     guarded sites are dead-code-eliminated from normal builds; an
//     unguarded Fire would put a map lookup (or worse, under the chaos
//     tag, an armed fault) on a production hot path.
//
//  2. Inside the faultinject package, any file that declares the
//     Enabled constant must carry a //go:build constraint — the whole
//     scheme collapses if a tag-free file redefines it.
func faultgate(f *srcFile) []finding {
	if strings.HasPrefix(f.path, "internal/faultinject/") {
		return faultgateDecl(f)
	}

	// Collect the bodies of every if-statement whose condition reads
	// faultinject.Enabled; Fire calls are legal only inside them.
	var guarded []span
	ast.Inspect(f.ast, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || !mentions(ifs.Cond, "faultinject", "Enabled") {
			return true
		}
		guarded = append(guarded, span{ifs.Body.Pos(), ifs.Body.End()})
		return true
	})

	var out []finding
	ast.Inspect(f.ast, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPkgSel(call.Fun, "faultinject", "Fire") {
			return true
		}
		if !inAny(guarded, call.Pos()) {
			out = append(out, finding{
				pos:   f.fset.Position(call.Pos()),
				check: "faultgate",
				msg:   "faultinject.Fire call not guarded by `if faultinject.Enabled`; unguarded points survive into normal builds",
			})
		}
		return true
	})
	return out
}

// faultgateDecl checks rule 2: Enabled declarations live behind build
// tags.
func faultgateDecl(f *srcFile) []finding {
	declares := false
	ast.Inspect(f.ast, func(n ast.Node) bool {
		vs, ok := n.(*ast.ValueSpec)
		if !ok {
			return true
		}
		for _, name := range vs.Names {
			if name.Name == "Enabled" {
				declares = true
			}
		}
		return true
	})
	if !declares {
		return nil
	}
	for _, cg := range f.ast.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//go:build") {
				return nil
			}
		}
	}
	return []finding{{
		pos:   f.fset.Position(f.ast.Package),
		check: "faultgate",
		msg:   "file declares faultinject.Enabled without a //go:build constraint",
	}}
}
