package lint

import (
	"go/ast"
)

// Compilepure enforces the closure-compilation allocation discipline in
// internal/eval/compile.go: a compileX function may allocate exactly one
// closure — the CompiledExpr it returns — and must do all of its
// preparation (operand compilation, constant folding, matcher
// construction) before that closure is built. Structurally that means
// no func literal may nest inside another func literal: a nested
// literal would be allocated per evaluation, not per compilation,
// putting an allocation back on the per-row path the compiler exists to
// clear. The check is lexical, so a violation is visible at the exact
// line the nested closure appears.
var Compilepure = &Analyzer{
	Name: "compilepure",
	Doc:  "internal/eval/compile.go never nests func literals: compiled closures allocate at prepare time only",
	Run:  perFile(compilepure),
}

func compilepure(r *Repo, f *File) []Finding {
	if f.Path != "internal/eval/compile.go" {
		return nil
	}
	// Collect every func literal's body span, then flag literals that
	// start inside another literal's body.
	var bodies []span
	ast.Inspect(f.Ast, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			bodies = append(bodies, span{fl.Body.Pos(), fl.Body.End()})
		}
		return true
	})
	var out []Finding
	ast.Inspect(f.Ast, func(n ast.Node) bool {
		fl, ok := n.(*ast.FuncLit)
		if !ok || !inAny(bodies, fl.Pos()) {
			return true
		}
		out = append(out, Finding{
			Pos:   r.pos(fl),
			Check: "compilepure",
			Msg: "func literal nested inside a compiled closure; closures must be " +
				"allocated at compile time only — hoist the inner literal into the compileX body",
		})
		return true
	})
	return out
}
