package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Ctxpoll enforces the cancellation-latency invariant in the execution
// packages (internal/plan, internal/eval, internal/shard,
// internal/index): a loop whose trip count depends on the data — a
// range over a slice of values, or an index loop walking one — must
// reach a cancellation/governor poll each iteration. The engine's
// cancellation story is cooperative: a context switch costs nothing if
// nobody checks the flag, and a data-sized loop that never polls turns
// a cancelled query into a full-table burn.
//
// A loop polls if its body, each iteration, can reach one of the poll
// points — eval.Context.Interrupted/InterruptedN/pollNow, or a
// Governor CheckTime/CheckDepth/Charge* call (every charge checks the
// budget) — either directly or through a statically-resolved module
// call that transitively polls. Calls without a visible body
// (interface dispatch, function values, compiled closures) are treated
// optimistically as polling: the pass exists to catch the provable
// straight-line burner, not to force annotations onto every dispatch
// site.
//
// Functions with no reachable poller — no eval.Context, Governor, or
// context.Context anywhere in their signature or body — are exempt:
// they cannot poll by construction, and their callers hold the
// responsibility (plan-time rewrites, value utilities). A loop that is
// data-sized but intentionally unpolled (a tight fold the governor
// already charged before entry) carries a `// ctxpoll:` marker saying
// so.
var Ctxpoll = &Analyzer{
	Name: "ctxpoll",
	Doc:  "data-dependent loops in the execution packages reach a cancellation/governor poll each iteration",
	Run:  runCtxpoll,
}

// ctxpollDirs are the packages whose loops execute against data.
var ctxpollDirs = []string{"internal/plan", "internal/eval", "internal/shard", "internal/index"}

func runCtxpoll(r *Repo) []Finding {
	ca := &ctxpollAnalysis{r: r, decls: r.declIndex(), polls: map[*types.Func]bool{}, visiting: map[*types.Func]bool{}}
	var out []Finding
	for _, p := range r.Pkgs {
		if !pkgInDirs(p, ctxpollDirs) {
			continue
		}
		p.funcs(func(f *File, fd *ast.FuncDecl) {
			out = append(out, ca.checkFunc(p, f, fd)...)
		})
	}
	return out
}

type ctxpollAnalysis struct {
	r     *Repo
	decls map[*types.Func]*declSite
	// polls memoizes whether a function's body reaches a poll point on
	// its straight-line path (any poll call anywhere in the body counts;
	// the per-iteration requirement is the caller's loop-body check).
	polls    map[*types.Func]bool
	visiting map[*types.Func]bool
}

func (ca *ctxpollAnalysis) checkFunc(p *Package, f *File, fd *ast.FuncDecl) []Finding {
	if fd.Doc != nil && strings.Contains(fd.Doc.Text(), "ctxpoll:") {
		return nil
	}
	if !ca.canPoll(p, fd) {
		return nil
	}
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		body, what := dataLoop(p.Info, n)
		if body == nil {
			return true
		}
		if ca.r.markerNear(f, n.Pos(), "ctxpoll:") {
			return true
		}
		if ca.bodyPolls(p.Info, body) {
			return true
		}
		out = append(out, Finding{
			Pos:   ca.r.pos(n),
			Check: "ctxpoll",
			Msg: what + " never reaches a cancellation/governor poll; a cancelled query burns the " +
				"whole input here — call Interrupted()/CheckTime()/Charge* each iteration or " +
				"document the bound with a `// ctxpoll:` marker",
		})
		return true
	})
	return out
}

// canPoll reports whether fd has any poller in reach: an eval.Context,
// Governor, or context.Context typed expression in its signature or
// body. Without one the function cannot poll by construction.
func (ca *ctxpollAnalysis) canPoll(p *Package, fd *ast.FuncDecl) bool {
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if isPollerType(typeOf(p.Info, field.Type)) {
				return true
			}
		}
	}
	// A method can reach a poller stored in a receiver field; the body
	// scan below sees the field selection's type.
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok && isPollerType(typeOf(p.Info, e)) {
			found = true
		}
		return !found
	})
	return found
}

// isPollerType reports whether t is one of the types that can poll:
// eval.Context, eval.Governor (possibly behind pointers), or the
// standard context.Context.
func isPollerType(t types.Type) bool {
	return namedPkgType(t, "internal/eval", "Context") ||
		namedPkgType(t, "internal/eval", "Governor") ||
		namedPkgType(t, "context", "Context")
}

// dataLoop classifies n as a data-dependent loop and returns its body:
// a range over a slice of value.Value (or value.Array/value.Bag, which
// are slices of Value), or a for statement whose body indexes such a
// slice. Maps are excluded — the engine's maps are object fields,
// bounded by schema width, not data size.
func dataLoop(info *types.Info, n ast.Node) (*ast.BlockStmt, string) {
	switch x := n.(type) {
	case *ast.RangeStmt:
		if isValueSlice(typeOf(info, x.X)) {
			return x.Body, "range over a data-sized value slice"
		}
	case *ast.ForStmt:
		// An index loop is data-dependent if its body indexes a slice of
		// values: `for i := lo; i < hi; i++ { ... elems[i] ... }`.
		if x.Body == nil {
			return nil, ""
		}
		indexed := false
		ast.Inspect(x.Body, func(m ast.Node) bool {
			if indexed {
				return false
			}
			ie, ok := m.(*ast.IndexExpr)
			if !ok {
				return true
			}
			if isValueSlice(typeOf(info, ie.X)) {
				indexed = true
			}
			return !indexed
		})
		if indexed {
			return x.Body, "index loop over a data-sized value slice"
		}
	}
	return nil, ""
}

// isValueSlice reports whether t is a slice whose element type is the
// engine's value.Value (including named slice types like value.Array).
func isValueSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := deref(t).Underlying().(*types.Slice)
	if !ok {
		return false
	}
	return namedPkgType(s.Elem(), "internal/value", "Value")
}

// bodyPolls reports whether the loop body reaches a poll point:
// directly, through a statically-resolved module call that transitively
// polls, or optimistically through a call with no visible body.
func (ca *ctxpollAnalysis) bodyPolls(info *types.Info, body *ast.BlockStmt) bool {
	polls := false
	ast.Inspect(body, func(n ast.Node) bool {
		if polls {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isPollCall(info, call):
			polls = true
		case isDynamicCall(info, call):
			// No visible body: assume it polls. The pass targets provable
			// straight-line burners, not every dispatch site.
			polls = true
		default:
			if callee := calleeOf(info, call); callee != nil {
				if ca.decls[callee] != nil {
					if ca.funcPolls(callee) {
						polls = true
					}
				} else if callee.Pkg() != nil && strings.Contains(callee.Pkg().Path(), "/") &&
					!isStdlibPkg(callee.Pkg().Path()) {
					// A module call whose body we cannot see (shouldn't
					// happen; decl index covers the module) — optimistic.
					polls = true
				}
			}
		}
		return !polls
	})
	return polls
}

// isStdlibPkg is a cheap test: stdlib import paths have no dot in their
// first segment.
func isStdlibPkg(ipath string) bool {
	first := ipath
	if i := strings.IndexByte(ipath, '/'); i >= 0 {
		first = ipath[:i]
	}
	return !strings.Contains(first, ".")
}

// isPollCall reports whether call is one of the poll points:
// eval.Context.Interrupted/InterruptedN/pollNow or a Governor
// CheckTime/CheckDepth/Charge* method.
func isPollCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	recv := typeOf(info, sel.X)
	switch {
	case namedPkgType(recv, "internal/eval", "Context"):
		return name == "Interrupted" || name == "InterruptedN" || name == "pollNow"
	case namedPkgType(recv, "internal/eval", "Governor"):
		return name == "CheckTime" || name == "CheckDepth" || strings.HasPrefix(name, "Charge")
	case namedPkgType(recv, "context", "Context"):
		// ctx.Err()/ctx.Done() checks count: shard-side loops poll the
		// standard context directly.
		return name == "Err" || name == "Done"
	}
	return false
}

// funcPolls memoizes whether fn's body reaches a poll point.
func (ca *ctxpollAnalysis) funcPolls(fn *types.Func) bool {
	if got, ok := ca.polls[fn]; ok {
		return got
	}
	if ca.visiting[fn] {
		return false
	}
	site := ca.decls[fn]
	if site == nil {
		return false
	}
	ca.visiting[fn] = true
	defer delete(ca.visiting, fn)
	polls := ca.bodyPolls(site.pkg.Info, site.decl.Body)
	ca.polls[fn] = polls
	return polls
}
