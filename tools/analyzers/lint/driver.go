// Package lint is the repo's static-analysis framework: a stdlib-only
// (go/parser + go/types + go/importer — no external analysis framework)
// typed, package-at-a-time driver plus the eight invariant passes that
// run over it. The paper's §VI argument — static checking of a dynamic
// language's risky spots pays for itself — applied to the engine's own
// Go: the rules that keep the concurrent core honest (lock ordering,
// goroutine joining, cancellation polling, typed errors at API seams,
// fault-injection gating, governor charging, clock discipline, closure
// purity) are enforced by machines instead of reviewers.
//
// A Repo is loaded once: every non-test file is parsed in parallel
// (including files excluded by build constraints, so tag-gated
// declarations stay visible to the syntactic checks), then the
// default-build packages are type-checked in dependency order against a
// combined importer — module-internal imports resolve to the parsed
// tree, everything else to the source importer. Findings from every
// pass are deduplicated and position-sorted, exactly like
// internal/sema's diagnostics, and render as text or JSON with an
// optional baseline file for grandfathered findings.
package lint

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Finding is one invariant violation.
type Finding struct {
	Pos   token.Position
	Check string
	Msg   string
}

// String renders the finding the way CI logs and tests print it.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Check, f.Msg)
}

// Key identifies a finding independently of line drift, for baseline
// matching: file, check, and message, but no line number.
func (f Finding) Key() string {
	return f.Pos.Filename + ": [" + f.Check + "] " + f.Msg
}

// File is one parsed source file.
type File struct {
	// Path is slash-separated and repo-root-relative; the per-file checks
	// scope themselves by it. Positions inside Ast print this path.
	Path string
	Ast  *ast.File
}

// Package is one type-checked, default-build package.
type Package struct {
	// Dir is the slash-relative package directory ("." for the module
	// root); the package-scoped checks scope themselves by it.
	Dir string
	// PkgPath is the import path.
	PkgPath string
	// Files are the build-active, non-test files.
	Files []*File
	Types *types.Package
	Info  *types.Info
}

// Repo is a loaded source tree, the unit every analyzer runs over.
type Repo struct {
	Root string
	Fset *token.FileSet
	// Files is every parsed non-test file, sorted by path — including
	// files a build constraint excludes from the default build.
	Files []*File
	// Pkgs is every default-build package, sorted by directory and fully
	// type-checked.
	Pkgs []*Package

	mu       sync.Mutex
	comments map[*File]map[int]string
	decls    map[*types.Func]*declSite
}

// Analyzer is one invariant pass.
type Analyzer struct {
	// Name is the check tag findings carry ("lockorder", "goroleak", …)
	// and the fixture-directory name under testdata/src.
	Name string
	// Doc is the one-line invariant statement.
	Doc string
	// Run reports every violation in the repo.
	Run func(r *Repo) []Finding
}

// All is the suite: the four per-file syntactic lints the repo started
// with, ported onto the typed driver, plus the four whole-program
// concurrency-safety passes.
var All = []*Analyzer{
	Faultgate,
	Govcharge,
	Noclock,
	Compilepure,
	Lockorder,
	Goroleak,
	Ctxpoll,
	Errseam,
}

// RunAll runs the whole suite and returns the deduplicated,
// position-sorted findings.
func RunAll(r *Repo) []Finding { return Run(r, All) }

// Run runs the given analyzers and merges their findings.
func Run(r *Repo, as []*Analyzer) []Finding {
	var out []Finding
	for _, a := range as {
		out = append(out, a.Run(r)...)
	}
	return Dedup(out)
}

// Dedup sorts findings by position then check, dropping exact
// duplicates (two passes may flag the same site).
func Dedup(fs []Finding) []Finding {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Msg < b.Msg
	})
	out := fs[:0]
	for i, f := range fs {
		if i > 0 && f == fs[i-1] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// ReadBaseline parses a baseline file: one Finding.Key per line,
// '#'-prefixed comments and blank lines ignored. Findings whose key
// appears are suppressed — the escape hatch for grandfathered debt,
// kept out of this repo on purpose (the tree runs clean).
func ReadBaseline(p string) (map[string]bool, error) {
	f, err := os.Open(p)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]bool{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out[line] = true
	}
	return out, sc.Err()
}

// FilterBaseline drops findings whose Key is baselined.
func FilterBaseline(fs []Finding, base map[string]bool) []Finding {
	if len(base) == 0 {
		return fs
	}
	out := fs[:0]
	for _, f := range fs {
		if !base[f.Key()] {
			out = append(out, f)
		}
	}
	return out
}

// Load parses and type-checks the repo rooted at root.
func Load(root string) (*Repo, error) {
	h, err := NewHost(root)
	if err != nil {
		return nil, err
	}
	return h.LoadRepo()
}

// Host caches a parsed module tree so several Repos (the real tree, the
// fixture packages) can type-check against it without re-parsing.
type Host struct {
	ld *loader
}

// NewHost parses the module at root (in parallel) without type-checking
// anything yet.
func NewHost(root string) (*Host, error) {
	ld, err := newLoader(root)
	if err != nil {
		return nil, err
	}
	return &Host{ld: ld}, nil
}

// LoadRepo type-checks every default-build package and returns the full
// Repo.
func (h *Host) LoadRepo() (*Repo, error) {
	ld := h.ld
	var dirs []string
	for d := range ld.active {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, d := range dirs {
		p, err := ld.check(d)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	if err := ld.typeErr(); err != nil {
		return nil, err
	}
	return &Repo{Root: ld.root, Fset: ld.fset, Files: ld.files, Pkgs: pkgs}, nil
}

// loader owns the parse products and the memoized type-checking.
type loader struct {
	root   string
	module string
	fset   *token.FileSet
	files  []*File            // every non-test file, sorted by path
	active map[string][]*File // dir → default-build files
	pkgs   map[string]*Package
	inFlight map[string]bool
	srcImp types.Importer
	errs   []error
}

func newLoader(root string) (*loader, error) {
	module, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	// Gather every non-test source path, then parse in parallel.
	var paths []string
	err = filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if p != root && (name == ".git" || name == "testdata" || name == "examples" || name == ".github") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			paths = append(paths, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	ld := &loader{
		root:     root,
		module:   module,
		fset:     token.NewFileSet(),
		active:   map[string][]*File{},
		pkgs:     map[string]*Package{},
		inFlight: map[string]bool{},
		srcImp:   importer.ForCompiler(token.NewFileSet(), "source", nil),
	}
	files, err := ld.parseAll(paths)
	if err != nil {
		return nil, err
	}
	ld.files = files
	for _, f := range files {
		if buildActive(f.Ast) {
			dir := path.Dir(f.Path)
			ld.active[dir] = append(ld.active[dir], f)
		}
	}
	return ld, nil
}

// parseAll parses every path concurrently. token.FileSet is safe for
// concurrent AddFile, so the workers share one; each file is parsed
// under its repo-relative slash path so positions print identically
// from any working directory.
func (ld *loader) parseAll(paths []string) ([]*File, error) {
	type slot struct {
		file *File
		err  error
	}
	slots := make([]slot, len(paths))
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > len(paths) {
		workers = len(paths)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				slots[i].file, slots[i].err = ld.parseOne(paths[i])
			}
		}()
	}
	for i := range paths {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	files := make([]*File, 0, len(slots))
	for _, s := range slots {
		if s.err != nil {
			return nil, s.err
		}
		files = append(files, s.file)
	}
	sort.Slice(files, func(i, j int) bool { return files[i].Path < files[j].Path })
	return files, nil
}

func (ld *loader) parseOne(p string) (*File, error) {
	rel, err := filepath.Rel(ld.root, p)
	if err != nil {
		return nil, err
	}
	rel = filepath.ToSlash(rel)
	src, err := os.ReadFile(p)
	if err != nil {
		return nil, err
	}
	tree, err := parser.ParseFile(ld.fset, rel, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	return &File{Path: rel, Ast: tree}, nil
}

// buildActive evaluates the file's //go:build constraint (if any) for
// the default build: only GOOS/GOARCH tags hold, so tag-gated files
// like the armed fault-injection implementation are excluded from
// type-checking while staying visible to the syntactic checks.
// Filename-implied constraints (_linux.go) are not emulated; the repo
// has none.
func buildActive(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true
			}
			return expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH
			})
		}
	}
	return true
}

// importPath maps a repo-relative dir to its import path.
func (ld *loader) importPath(dir string) string {
	if dir == "." {
		return ld.module
	}
	return ld.module + "/" + dir
}

// check type-checks the package in dir (memoized), resolving its
// module-internal imports recursively and everything else through the
// source importer.
func (ld *loader) check(dir string) (*Package, error) {
	if p, ok := ld.pkgs[dir]; ok {
		return p, nil
	}
	if ld.inFlight[dir] {
		return nil, fmt.Errorf("lint: import cycle through %s", dir)
	}
	files := ld.active[dir]
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable package in %s", dir)
	}
	ld.inFlight[dir] = true
	defer delete(ld.inFlight, dir)

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: importerFunc(ld.importPkg),
		Error: func(err error) {
			if len(ld.errs) < 20 {
				ld.errs = append(ld.errs, err)
			}
		},
	}
	asts := make([]*ast.File, len(files))
	for i, f := range files {
		asts[i] = f.Ast
	}
	tp, _ := conf.Check(ld.importPath(dir), ld.fset, asts, info)
	p := &Package{Dir: dir, PkgPath: ld.importPath(dir), Files: files, Types: tp, Info: info}
	ld.pkgs[dir] = p
	return p, nil
}

// importPkg resolves one import for the type checker.
func (ld *loader) importPkg(ipath string) (*types.Package, error) {
	if ipath == ld.module {
		p, err := ld.check(".")
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if rest, ok := strings.CutPrefix(ipath, ld.module+"/"); ok {
		p, err := ld.check(rest)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return ld.srcImp.Import(ipath)
}

// typeErr folds the collected type errors into one error.
func (ld *loader) typeErr() error {
	if len(ld.errs) == 0 {
		return nil
	}
	msgs := make([]string, len(ld.errs))
	for i, e := range ld.errs {
		msgs[i] = e.Error()
	}
	return fmt.Errorf("lint: type checking failed:\n  %s", strings.Join(msgs, "\n  "))
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(p string) (*types.Package, error) { return f(p) }

// modulePath reads the module directive from root's go.mod.
func modulePath(root string) (string, error) {
	src, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: the analysis root must be a module root: %w", err)
	}
	for _, line := range strings.Split(string(src), "\n") {
		if m, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(m), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// ---- shared analyzer plumbing ----

// perFile lifts a per-file syntactic check over every parsed file,
// build-excluded files included.
func perFile(check func(r *Repo, f *File) []Finding) func(*Repo) []Finding {
	return func(r *Repo) []Finding {
		var out []Finding
		for _, f := range r.Files {
			out = append(out, check(r, f)...)
		}
		return out
	}
}

// perPkg lifts a package-at-a-time typed check over every default-build
// package.
func perPkg(check func(r *Repo, p *Package) []Finding) func(*Repo) []Finding {
	return func(r *Repo) []Finding {
		var out []Finding
		for _, p := range r.Pkgs {
			out = append(out, check(r, p)...)
		}
		return out
	}
}

// pos renders a node's position.
func (r *Repo) pos(n ast.Node) token.Position { return r.Fset.Position(n.Pos()) }

// pkgInDirs reports whether p's directory is one of dirs.
func pkgInDirs(p *Package, dirs []string) bool {
	for _, d := range dirs {
		if p.Dir == d {
			return true
		}
	}
	return false
}

// funcs calls fn for every function declaration in p, with its file.
func (p *Package) funcs(fn func(f *File, fd *ast.FuncDecl)) {
	for _, f := range p.Files {
		for _, d := range f.Ast.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(f, fd)
			}
		}
	}
}

// enclosingFunc returns the function declaration lexically containing
// pos in f, or nil.
func enclosingFunc(f *File, pos token.Pos) *ast.FuncDecl {
	for _, d := range f.Ast.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos < fd.End() {
			return fd
		}
	}
	return nil
}

// commentLines maps each source line of f to the comment text occupying
// it (cached per file).
func (r *Repo) commentLines(f *File) map[int]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.comments == nil {
		r.comments = map[*File]map[int]string{}
	}
	if m, ok := r.comments[f]; ok {
		return m
	}
	m := map[int]string{}
	for _, cg := range f.Ast.Comments {
		for _, c := range cg.List {
			start := r.Fset.Position(c.Pos()).Line
			end := r.Fset.Position(c.End()).Line
			lines := strings.Split(c.Text, "\n")
			for l := start; l <= end; l++ {
				i := l - start
				if i >= len(lines) {
					i = len(lines) - 1
				}
				m[l] += lines[i]
			}
		}
	}
	r.comments[f] = m
	return m
}

// markerNear reports whether a marker comment containing key is
// attached to the node at pos: on its own line, on the contiguous
// comment lines immediately above it, or in the enclosing function's
// doc comment. Markers are forced documentation, not escape hatches:
// the reviewer sees the claim next to the code it covers.
func (r *Repo) markerNear(f *File, pos token.Pos, key string) bool {
	if fd := enclosingFunc(f, pos); fd != nil && fd.Doc != nil &&
		strings.Contains(fd.Doc.Text(), key) {
		return true
	}
	lines := r.commentLines(f)
	l := r.Fset.Position(pos).Line
	if strings.Contains(lines[l], key) {
		return true
	}
	for k := l - 1; ; k-- {
		t, ok := lines[k]
		if !ok {
			return false
		}
		if strings.Contains(t, key) {
			return true
		}
	}
}

// span is a half-open position interval within a file.
type span struct{ lo, hi token.Pos }

func (s span) contains(p token.Pos) bool { return s.lo <= p && p < s.hi }

func inAny(spans []span, p token.Pos) bool {
	for _, s := range spans {
		if s.contains(p) {
			return true
		}
	}
	return false
}

// isPkgSel reports whether e is the selector pkg.name on a plain
// package identifier (purely syntactic; the per-file checks use it so
// they work on tag-excluded files that were never type-checked).
func isPkgSel(e ast.Expr, pkg, name string) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == pkg
}

// mentions reports whether the selector pkg.name occurs anywhere in n.
func mentions(n ast.Node, pkg, name string) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if e, ok := c.(ast.Expr); ok && isPkgSel(e, pkg, name) {
			found = true
			return false
		}
		return !found
	})
	return found
}
