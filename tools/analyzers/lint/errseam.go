package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// Errseam enforces the typed-error taxonomy at the engine's exported
// seams (internal/plan, internal/eval, internal/shard, internal/index,
// internal/stats, internal/catalog): errors crossing those package
// boundaries must be classifiable — a ResourceError the server maps to
// 429, a ShardError carrying the failed shard's identity, a PanicError
// carrying the recovered stack, a VetError carrying positions — or a
// wrapped error whose chain still reaches one. Two shapes defeat
// classification and are banned:
//
//   - errors.New at a return site: a bare opaque error with no type and
//     no chain. Package-level sentinel declarations (`var errStop =
//     errors.New(...)`) are exempt — a sentinel compared with errors.Is
//     is itself a classification scheme.
//
//   - fmt.Errorf that is handed an error argument but has no %w in its
//     format: the cause is flattened into text, errors.Is/As stop
//     seeing through it, and the server's taxonomy mapping silently
//     degrades to "internal error".
//
// A site that genuinely wants an opaque error (a developer-facing
// invariant message, never classified) carries a `// errseam:` marker
// saying so.
var Errseam = &Analyzer{
	Name: "errseam",
	Doc:  "seam packages return typed or %w-wrapped errors: no bare errors.New outside sentinels, no chain-breaking fmt.Errorf",
	Run:  perPkg(errseam),
}

// errseamDirs are the exported seam packages.
var errseamDirs = []string{
	"internal/plan", "internal/eval", "internal/shard",
	"internal/index", "internal/stats", "internal/catalog",
}

func errseam(r *Repo, p *Package) []Finding {
	if !pkgInDirs(p, errseamDirs) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		sentinels := sentinelSpans(f.Ast)
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(p.Info, call)
			switch {
			case stdFunc(callee, "errors", "New"):
				if inAny(sentinels, call.Pos()) || r.markerNear(f, call.Pos(), "errseam:") {
					return true
				}
				out = append(out, Finding{
					Pos:   r.pos(call),
					Check: "errseam",
					Msg: "bare errors.New in a seam package escapes the typed-error taxonomy; return a " +
						"ResourceError/ShardError/PanicError/VetError, wrap a cause with fmt.Errorf(...%w...), " +
						"or hoist a sentinel into a package-level var (opaque-on-purpose sites take a `// errseam:` marker)",
				})
			case stdFunc(callee, "fmt", "Errorf"):
				if !errorfBreaksChain(p, call) {
					return true
				}
				if r.markerNear(f, call.Pos(), "errseam:") {
					return true
				}
				out = append(out, Finding{
					Pos:   r.pos(call),
					Check: "errseam",
					Msg: "fmt.Errorf is handed an error but has no %w: the cause is flattened to text and " +
						"errors.Is/As stop seeing through this seam; use %w (or a `// errseam:` marker if " +
						"breaking the chain is intended)",
				})
			}
			return true
		})
	}
	return out
}

// sentinelSpans returns the spans of package-level var declarations in
// f: errors.New inside them declares a sentinel, not a return value.
func sentinelSpans(f *ast.File) []span {
	var out []span
	for _, d := range f.Decls {
		if gd, ok := d.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			out = append(out, span{gd.Pos(), gd.End()})
		}
	}
	return out
}

// errorfBreaksChain reports whether the fmt.Errorf call is handed at
// least one error-typed argument while its format literal has no %w
// verb. A non-literal format cannot be judged and reports false.
func errorfBreaksChain(p *Package, call *ast.CallExpr) bool {
	if len(call.Args) < 2 {
		return false
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok {
		return false
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil || strings.Contains(format, "%w") {
		return false
	}
	for _, a := range call.Args[1:] {
		if implementsError(typeOf(p.Info, a)) {
			return true
		}
	}
	return false
}
