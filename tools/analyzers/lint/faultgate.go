package lint

import (
	"go/ast"
	"strings"
)

// Faultgate enforces the fault-injection build discipline:
//
//  1. Outside the faultinject package itself, every call to
//     faultinject.Fire must sit inside the body of an
//     `if faultinject.Enabled { ... }` guard. Enabled is a constant, so
//     guarded sites are dead-code-eliminated from normal builds; an
//     unguarded Fire would put a map lookup (or worse, under the chaos
//     tag, an armed fault) on a production hot path.
//
//  2. Inside the faultinject package, any file that declares the
//     Enabled constant must carry a //go:build constraint — the whole
//     scheme collapses if a tag-free file redefines it.
//
// The check is per-file and syntactic on purpose: it must see the
// tag-excluded armed implementation, which the type checker never
// loads.
var Faultgate = &Analyzer{
	Name: "faultgate",
	Doc:  "faultinject.Fire sites are guarded by `if faultinject.Enabled`; Enabled declarations carry //go:build tags",
	Run:  perFile(faultgate),
}

func faultgate(r *Repo, f *File) []Finding {
	if strings.HasPrefix(f.Path, "internal/faultinject/") {
		return faultgateDecl(r, f)
	}

	// Collect the bodies of every if-statement whose condition reads
	// faultinject.Enabled; Fire calls are legal only inside them.
	var guarded []span
	ast.Inspect(f.Ast, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || !mentions(ifs.Cond, "faultinject", "Enabled") {
			return true
		}
		guarded = append(guarded, span{ifs.Body.Pos(), ifs.Body.End()})
		return true
	})

	var out []Finding
	ast.Inspect(f.Ast, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPkgSel(call.Fun, "faultinject", "Fire") {
			return true
		}
		if !inAny(guarded, call.Pos()) {
			out = append(out, Finding{
				Pos:   r.pos(call),
				Check: "faultgate",
				Msg:   "faultinject.Fire call not guarded by `if faultinject.Enabled`; unguarded points survive into normal builds",
			})
		}
		return true
	})
	return out
}

// faultgateDecl checks rule 2: Enabled declarations live behind build
// tags.
func faultgateDecl(r *Repo, f *File) []Finding {
	declares := false
	ast.Inspect(f.Ast, func(n ast.Node) bool {
		vs, ok := n.(*ast.ValueSpec)
		if !ok {
			return true
		}
		for _, name := range vs.Names {
			if name.Name == "Enabled" {
				declares = true
			}
		}
		return true
	})
	if !declares {
		return nil
	}
	for _, cg := range f.Ast.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//go:build") {
				return nil
			}
		}
	}
	return []Finding{{
		Pos:   r.Fset.Position(f.Ast.Package),
		Check: "faultgate",
		Msg:   "file declares faultinject.Enabled without a //go:build constraint",
	}}
}
