package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/types"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// LoadFixture parses and type-checks the fixture tree rooted at dir —
// the diff harness behind testdata/src. Each immediate or nested
// directory of .go files becomes one fixture package, type-checked
// against the real module through the host's importer, so a fixture
// that says `ctx *eval.Context` resolves to the same type the repo run
// sees.
//
// A fixture file may carry a `//lint:path <repo-relative path>`
// directive on a line of its own; the file is then parsed under that
// virtual path, so the path-scoped checks (noclock's internal/shard
// rule, compilepure's compile.go rule) and the directory-scoped checks
// (lockorder's internal/shard scope) fire exactly as they would on the
// real tree. The fixture package's Dir is the directory of its first
// file's virtual path. Build constraints are not evaluated for
// fixtures: every file in the directory is part of the package.
func (h *Host) LoadFixture(dir string) (*Repo, error) {
	ld := h.ld
	groups := map[string][]*File{}
	var order []string
	var all []*File
	err := filepath.WalkDir(dir, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		src, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		virt := fixtureVirtualPath(dir, p, string(src))
		tree, err := parser.ParseFile(ld.fset, virt, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		f := &File{Path: virt, Ast: tree}
		dd := filepath.Dir(p)
		if _, ok := groups[dd]; !ok {
			order = append(order, dd)
		}
		groups[dd] = append(groups[dd], f)
		all = append(all, f)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("lint: no fixture files under %s", dir)
	}
	sort.Strings(order)
	var pkgs []*Package
	for _, dd := range order {
		files := groups[dd]
		sort.Slice(files, func(i, j int) bool { return files[i].Path < files[j].Path })
		p, err := ld.checkFixture(dir, dd, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Path < all[j].Path })
	return &Repo{Root: dir, Fset: ld.fset, Files: all, Pkgs: pkgs}, nil
}

// fixtureVirtualPath extracts the //lint:path directive, defaulting to
// a fixtures/-prefixed relative path when absent.
func fixtureVirtualPath(root, p, src string) string {
	for _, line := range strings.Split(src, "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "//lint:path "); ok {
			return path.Clean(strings.TrimSpace(rest))
		}
	}
	rel, err := filepath.Rel(root, p)
	if err != nil {
		rel = p
	}
	return path.Join("fixtures", filepath.ToSlash(rel))
}

// checkFixture type-checks one fixture package. Errors go to a local
// collector — a broken fixture must not poison the host's repo state.
func (ld *loader) checkFixture(root, diskDir string, files []*File) (*Package, error) {
	rel, err := filepath.Rel(root, diskDir)
	if err != nil {
		return nil, err
	}
	pkgPath := path.Join("fixtures", filepath.Base(root), filepath.ToSlash(rel))
	var errs []error
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: importerFunc(ld.importPkg),
		Error: func(err error) {
			if len(errs) < 20 {
				errs = append(errs, err)
			}
		},
	}
	asts := make([]*ast.File, len(files))
	for i, f := range files {
		asts[i] = f.Ast
	}
	tp, _ := conf.Check(pkgPath, ld.fset, asts, info)
	if len(errs) > 0 {
		msgs := make([]string, len(errs))
		for i, e := range errs {
			msgs[i] = e.Error()
		}
		return nil, fmt.Errorf("lint: fixture %s does not type-check:\n  %s", diskDir, strings.Join(msgs, "\n  "))
	}
	return &Package{
		Dir:     path.Dir(files[0].Path),
		PkgPath: pkgPath,
		Files:   files,
		Types:   tp,
		Info:    info,
	}, nil
}
