package lint

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestFixtures is the diff harness over testdata/src: each directory
// names one analyzer and holds fixture packages annotated with
// `// want "substring"` comments. Every annotated line must produce a
// finding whose message contains the substring, and every finding must
// land on an annotated line — so both false negatives and false
// positives fail the test. Every analyzer in the suite must have a
// fixture directory.
func TestFixtures(t *testing.T) {
	host, _ := getRepo(t)
	byName := map[string]*Analyzer{}
	for _, a := range All {
		byName[a.Name] = a
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	covered := map[string]bool{}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		a := byName[e.Name()]
		if a == nil {
			t.Errorf("testdata/src/%s does not name an analyzer", e.Name())
			continue
		}
		covered[a.Name] = true
		t.Run(a.Name, func(t *testing.T) {
			fix, err := host.LoadFixture(filepath.Join("testdata", "src", a.Name))
			if err != nil {
				t.Fatal(err)
			}
			checkWants(t, fix, Dedup(a.Run(fix)))
		})
	}
	for _, a := range All {
		if !covered[a.Name] {
			t.Errorf("analyzer %s has no fixture directory under testdata/src", a.Name)
		}
	}
}

type lineKey struct {
	file string
	line int
}

// collectWants scans fixture comments for `want "..."` expectations,
// keyed by the line the comment sits on. Several quoted strings after
// one want are several expectations for that line.
func collectWants(t *testing.T, fix *Repo) map[lineKey][]string {
	t.Helper()
	wants := map[lineKey][]string{}
	for _, f := range fix.Files {
		for _, cg := range f.Ast.Comments {
			for _, c := range cg.List {
				i := strings.Index(c.Text, `want "`)
				if i < 0 {
					continue
				}
				line := fix.Fset.Position(c.Pos()).Line
				k := lineKey{f.Path, line}
				rest := c.Text[i+len("want "):]
				for strings.HasPrefix(rest, `"`) {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Errorf("%s:%d: malformed want expectation: %s", f.Path, line, rest)
						break
					}
					s, _ := strconv.Unquote(q)
					wants[k] = append(wants[k], s)
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return wants
}

func checkWants(t *testing.T, fix *Repo, got []Finding) {
	t.Helper()
	wants := collectWants(t, fix)
	matched := map[lineKey][]bool{}
	for _, f := range got {
		k := lineKey{f.Pos.Filename, f.Pos.Line}
		ws := wants[k]
		ok := false
		for i, w := range ws {
			if strings.Contains(f.Msg, w) {
				if matched[k] == nil {
					matched[k] = make([]bool, len(ws))
				}
				matched[k][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for k, ws := range wants {
		for i, w := range ws {
			if matched[k] == nil || !matched[k][i] {
				t.Errorf("%s:%d: no finding containing %q", k.file, k.line, w)
			}
		}
	}
}
