package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Goroleak requires every `go` statement in non-test code to have a
// provable join — a leaked goroutine holds its stack, its captures, and
// under the governor's accounting model, resources nobody ever releases.
// A spawn passes if the spawned body:
//
//   - calls Done on a sync.WaitGroup that some function in the same
//     package Waits on (the scatter/gather shape: workers Done, the
//     gather side Waits), or
//
//   - sends on (or closes) a channel that the same package receives
//     from — a receive expression, a range, or a select case — so the
//     result is consumed and the buffered-send-then-abandon shape
//     (hedged attempts) is recognized as joined, or
//
//   - carries a `// goroutine:` marker at the spawn site or in the
//     enclosing function's doc comment explaining why the goroutine is
//     deliberately abandoned (a daemon, an accept loop). The marker is
//     forced documentation: the reviewer sees the lifetime claim next
//     to the spawn.
//
// Spawns of named module functions are resolved through the declaration
// index so `go c.gather()` is checked against gather's body; spawns of
// local function variables (`launch := func(){...}; go launch()`)
// resolve through the enclosing function's assignments. A spawn whose
// body cannot be resolved at all (a function value from elsewhere, an
// interface method) must carry the marker — if the analyzer cannot see
// the join, the reader cannot either.
var Goroleak = &Analyzer{
	Name: "goroleak",
	Doc:  "every go statement joins: WaitGroup Done/Wait, a consumed result channel, or a documented `// goroutine:` abandon",
	Run:  perPkg(goroleak),
}

func goroleak(r *Repo, p *Package) []Finding {
	joins := packageJoinSites(p)
	var out []Finding
	p.funcs(func(f *File, fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if r.markerNear(f, g.Pos(), "goroutine:") {
				return true
			}
			if spawnArgsJoin(p, g.Call, joins) {
				return true
			}
			body, info := spawnedBody(r, p, fd, g.Call)
			if body == nil {
				out = append(out, Finding{
					Pos:   r.pos(g),
					Check: "goroleak",
					Msg: "go statement spawns a function whose body the analyzer cannot see; " +
						"spawn a literal or named function, or document the lifetime with a `// goroutine:` marker",
				})
				return true
			}
			if spawnJoins(info, body, joins) {
				return true
			}
			out = append(out, Finding{
				Pos:   r.pos(g),
				Check: "goroleak",
				Msg: "go statement has no provable join: the spawned body neither calls Done on a " +
					"WaitGroup this package Waits on nor sends on a channel this package receives from; " +
					"join it or document the abandon with a `// goroutine:` marker",
			})
			return true
		})
	})
	return out
}

// joinSites records, per package, the identities a spawned goroutine
// can join against: WaitGroup objects some function Waits on, and
// channel objects some function receives from.
type joinSites struct {
	waited   map[types.Object]bool
	received map[types.Object]bool
}

// packageJoinSites scans every function in p once for Wait calls and
// channel receives. Join detection is package-scoped on purpose: the
// scatter side and the gather side of a coordinator are different
// methods, and a worker pool's Wait often lives in a Close.
func packageJoinSites(p *Package) *joinSites {
	js := &joinSites{waited: map[types.Object]bool{}, received: map[types.Object]bool{}}
	addRecv := func(e ast.Expr) {
		if o := rootObj(p.Info, e); o != nil {
			js.received[o] = true
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
				if ok && sel.Sel.Name == "Wait" && isWaitGroupRecv(p.Info, x) {
					if o := rootObj(p.Info, sel.X); o != nil {
						js.waited[o] = true
					}
				}
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					addRecv(x.X)
				}
			case *ast.RangeStmt:
				if t := typeOf(p.Info, x.X); t != nil {
					if _, ok := deref(t).Underlying().(*types.Chan); ok {
						addRecv(x.X)
					}
				}
			}
			return true
		})
	}
	return js
}

// spawnArgsJoin reports whether the spawn hands the goroutine a join
// seam as an argument: a channel this package receives from (`go
// worker(resultCh)`) or a WaitGroup this package Waits on (`go
// worker(&wg)`). Inside the spawned body those are different objects —
// the worker's own parameters — so the join is recognized at the
// hand-off instead.
func spawnArgsJoin(p *Package, call *ast.CallExpr, joins *joinSites) bool {
	for _, a := range call.Args {
		t := typeOf(p.Info, a)
		if t == nil {
			continue
		}
		o := rootObj(p.Info, unaddr(a))
		if o == nil {
			continue
		}
		if _, ok := deref(t).Underlying().(*types.Chan); ok && joins.received[o] {
			return true
		}
		if namedPkgType(t, "sync", "WaitGroup") && joins.waited[o] {
			return true
		}
	}
	return false
}

// unaddr strips a leading & so `&wg` resolves to wg's object.
func unaddr(e ast.Expr) ast.Expr {
	if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.AND {
		return u.X
	}
	return e
}

// spawnedBody resolves the body the go statement runs: a literal's
// body, a local function variable's literal, or a named module
// function's declaration. Returns nil when the body is not visible.
func spawnedBody(r *Repo, p *Package, fd *ast.FuncDecl, call *ast.CallExpr) (*ast.BlockStmt, *types.Info) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body, p.Info
	case *ast.Ident:
		switch obj := p.Info.Uses[fun].(type) {
		case *types.Var:
			// A local function variable: find its literal assignment in the
			// enclosing function (`launch := func(){...}; go launch()`).
			if lit := localFuncLit(p.Info, fd, obj); lit != nil {
				return lit.Body, p.Info
			}
			return nil, nil
		case *types.Func:
			if site := r.declIndex()[obj]; site != nil {
				return site.decl.Body, site.pkg.Info
			}
		}
	case *ast.SelectorExpr:
		if callee := calleeOf(p.Info, call); callee != nil {
			if site := r.declIndex()[callee]; site != nil {
				return site.decl.Body, site.pkg.Info
			}
		}
	}
	return nil, nil
}

// localFuncLit finds the func literal assigned to v inside fd, for the
// `launch := func(){...}` spawn shape. Only a single unconditional
// assignment counts; a variable reassigned in branches has no one body.
func localFuncLit(info *types.Info, fd *ast.FuncDecl, v *types.Var) *ast.FuncLit {
	var lit *ast.FuncLit
	n := 0
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		as, ok := node.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || i >= len(as.Rhs) {
				continue
			}
			if info.Defs[id] != v && info.Uses[id] != v {
				continue
			}
			n++
			lit, _ = ast.Unparen(as.Rhs[i]).(*ast.FuncLit)
		}
		return true
	})
	if n != 1 {
		return nil
	}
	return lit
}

// spawnJoins reports whether the spawned body reaches a join: Done on a
// waited WaitGroup, or a send/close on a received channel.
func spawnJoins(info *types.Info, body *ast.BlockStmt, joins *joinSites) bool {
	joined := false
	ast.Inspect(body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			if o := rootObj(info, x.Chan); o != nil && joins.received[o] {
				joined = true
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Done" && isWaitGroupRecv(info, x) {
					if o := rootObj(info, sel.X); o != nil && joins.waited[o] {
						joined = true
					}
				}
			}
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" && len(x.Args) == 1 {
				if tv, ok := info.Types[x.Fun]; ok && tv.IsBuiltin() {
					if o := rootObj(info, x.Args[0]); o != nil && joins.received[o] {
						joined = true
					}
				}
			}
		}
		return !joined
	})
	return joined
}
