package lint

import (
	"go/ast"
	"strings"
)

// Govcharge enforces the resource-governor discipline in internal/plan
// and internal/index: any function that accumulates rows — an append
// inside a loop — is a potential unbounded buffer, so it must either
// charge the governor (a Charge*/CheckDepth call somewhere in the
// function) or carry an explicit `// governor:` marker in its doc
// comment stating where the charge happens or why the accumulation is
// bounded, e.g.
//
//	// governor:charged-at plan.go select sink (rows flow through it)
//	// governor:bounded by the number of clauses in the query
//
// The marker is not an escape hatch so much as forced documentation:
// the reviewer sees the claim next to the buffer.
//
// optimize.go is exempt wholesale — it runs at plan time, where every
// slice is bounded by the query text, not the data. internal/index is
// covered because index build and probe walk whole collections: their
// accumulators (buckets, candidate runs) grow with the data and must
// charge "index-build"/"index-probe" or document their bound.
// internal/eval/compile.go is covered because compiled closures run on
// the per-row path: an accumulator inside one (a constructor buffer, a
// batch) grows with the data exactly like a plan operator's and must
// charge or document its bound the same way. internal/stats is covered
// because statistics builds walk whole collections at ingest: sketch
// and summary accumulators must charge "stats-build" or document the
// sketchK/maxPaths bound that caps them. internal/shard is covered
// because the coordinator's merge side re-materializes shard output:
// partial folds and gather reassembly buffers grow with the data and
// must charge "shard-gather" or document their bound (partitioning at
// Distribute time is data-sized too, and says so).
var Govcharge = &Analyzer{
	Name: "govcharge",
	Doc:  "row-accumulating loops in governed packages charge the governor or document their bound with `// governor:`",
	Run:  perFile(govcharge),
}

func govcharge(r *Repo, f *File) []Finding {
	covered := strings.HasPrefix(f.Path, "internal/plan/") ||
		strings.HasPrefix(f.Path, "internal/index/") ||
		strings.HasPrefix(f.Path, "internal/stats/") ||
		strings.HasPrefix(f.Path, "internal/shard/") ||
		f.Path == "internal/eval/compile.go"
	if !covered || strings.HasSuffix(f.Path, "/optimize.go") {
		return nil
	}

	var out []Finding
	for _, decl := range f.Ast.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if hasGovMarker(fd) || chargesGovernor(fd) {
			continue
		}
		if at, found := appendInLoop(fd.Body); found {
			out = append(out, Finding{
				Pos:   r.pos(at),
				Check: "govcharge",
				Msg: "function " + fd.Name.Name + " accumulates rows in a loop without charging the governor; " +
					"add a Charge* call or a `// governor:` marker naming the charge site or bound",
			})
		}
	}
	return out
}

// hasGovMarker reports whether the function's doc comment contains a
// `governor:` marker.
func hasGovMarker(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.Contains(c.Text, "governor:") {
			return true
		}
	}
	return false
}

// chargesGovernor reports whether the function body calls a governor
// method (ChargeValues, ChargeBindings, ChargeOutput, CheckDepth, ...).
func chargesGovernor(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			name := sel.Sel.Name
			if strings.HasPrefix(name, "Charge") || name == "CheckDepth" {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// appendInLoop finds the first append call lexically inside a for or
// range statement within body.
func appendInLoop(body *ast.BlockStmt) (pos ast.Node, found bool) {
	var loops []span
	ast.Inspect(body, func(n ast.Node) bool {
		switch l := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, span{l.Body.Pos(), l.Body.End()})
		case *ast.RangeStmt:
			loops = append(loops, span{l.Body.Pos(), l.Body.End()})
		}
		return true
	})
	var at ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && inAny(loops, call.Pos()) {
			at = call
			return false
		}
		return at == nil
	})
	return at, at != nil
}
