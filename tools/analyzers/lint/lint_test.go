package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var (
	hostOnce sync.Once
	testHost *Host
	testRepo *Repo
	hostErr  error
)

// getRepo parses and type-checks the real module once for every test in
// the package; the fixture tests type-check against the same host so
// module imports resolve without re-parsing.
func getRepo(t *testing.T) (*Host, *Repo) {
	t.Helper()
	hostOnce.Do(func() {
		testHost, hostErr = NewHost(filepath.Join("..", "..", ".."))
		if hostErr == nil {
			testRepo, hostErr = testHost.LoadRepo()
		}
	})
	if hostErr != nil {
		t.Fatalf("loading module: %v", hostErr)
	}
	return testHost, testRepo
}

// TestRepoClean is the enforcement test: the repo's own tree must run
// clean under every analyzer in the suite. A finding here is a build
// break, exactly like a failing unit test.
func TestRepoClean(t *testing.T) {
	_, repo := getRepo(t)
	for _, a := range All {
		t.Run(a.Name, func(t *testing.T) {
			for _, f := range Dedup(a.Run(repo)) {
				t.Errorf("%s", f)
			}
		})
	}
}

func TestAnalyzerNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing a name, doc, or run function", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

func TestDedup(t *testing.T) {
	pos := func(file string, line int) token.Position {
		return token.Position{Filename: file, Line: line, Column: 1}
	}
	in := []Finding{
		{Pos: pos("b.go", 2), Check: "x", Msg: "m2"},
		{Pos: pos("a.go", 9), Check: "x", Msg: "m1"},
		{Pos: pos("b.go", 2), Check: "x", Msg: "m2"}, // duplicate
		{Pos: pos("a.go", 9), Check: "w", Msg: "m0"},
	}
	out := Dedup(in)
	if len(out) != 3 {
		t.Fatalf("got %d findings, want 3: %v", len(out), out)
	}
	wantOrder := []string{"m0", "m1", "m2"}
	for i, f := range out {
		if f.Msg != wantOrder[i] {
			t.Errorf("position %d: got %q, want %q", i, f.Msg, wantOrder[i])
		}
	}
}

func TestBaseline(t *testing.T) {
	f1 := Finding{Pos: token.Position{Filename: "a.go", Line: 3}, Check: "noclock", Msg: "grandfathered"}
	f2 := Finding{Pos: token.Position{Filename: "b.go", Line: 7}, Check: "noclock", Msg: "new debt"}
	p := filepath.Join(t.TempDir(), "baseline.txt")
	content := "# grandfathered findings\n\n" + f1.Key() + "\n"
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := ReadBaseline(p)
	if err != nil {
		t.Fatal(err)
	}
	got := FilterBaseline([]Finding{f1, f2}, base)
	if len(got) != 1 || got[0].Msg != "new debt" {
		t.Fatalf("FilterBaseline kept %v, want only the new finding", got)
	}
	// Keys deliberately ignore line numbers so baselines survive drift.
	moved := f1
	moved.Pos.Line = 99
	if !base[moved.Key()] {
		t.Errorf("baseline did not match the same finding at a different line")
	}
}
