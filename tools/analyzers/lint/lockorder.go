package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lockorder builds the mutex-acquisition graph across the engine's
// concurrent packages from type-resolved Lock/RLock call sites and
// enforces three invariants:
//
//  1. No cycles: if lock B is ever acquired while A is held and,
//     anywhere else in the program, A is acquired while B is held, the
//     two orders can deadlock under the right interleaving. Edges
//     follow static calls, so an acquisition buried two calls deep
//     still reaches the graph.
//
//  2. Nested acquisition is documented: a function that takes a second
//     lock while holding a first must carry a `// lockorder:` marker in
//     its doc comment naming the order it relies on. The marker is
//     forced documentation — the reviewer sees the ordering claim next
//     to the code that depends on it — and it never suppresses a cycle.
//
//  3. No blocking under a lock: while a mutex is held, channel
//     operations, selects, WaitGroup.Wait, time.Sleep, calls that
//     transitively reach any of those, and interface-dispatched exec
//     calls (methods taking a context.Context — shard executors, engine
//     execution) are flagged as potential deadlocks unless the site or
//     the function documents the safety argument with `// lockorder:`.
//
// Held regions are computed lexically per region — a function body or a
// func literal's body, each analyzed independently because a literal
// usually runs on another goroutine. A Lock extends to the first
// matching non-deferred Unlock on the same mutex, or to the region end
// when the unlock is deferred. Mutex identity is type-resolved — the
// owning named type plus field name for struct fields, the declaring
// package plus name for package-level mutexes — so `c.mu` in two
// different methods is one lock, and two different structs' `mu` fields
// are two.
var Lockorder = &Analyzer{
	Name: "lockorder",
	Doc:  "the mutex-acquisition graph across internal/{catalog,server,shard} is acyclic, documented, and never blocks under a lock",
	Run:  runLockorder,
}

// lockorderDirs are the packages whose lock usage is enforced; the
// acquisition graph itself is built module-wide so a cross-package
// nesting (a server handler calling into the catalog under a lock)
// still produces its edge.
var lockorderDirs = []string{"internal/catalog", "internal/server", "internal/shard"}

// mutexOp is one Lock/Unlock-family call site.
type mutexOp struct {
	pos      token.Pos
	id       string
	kind     string // "Lock", "RLock", "Unlock", "RUnlock"
	deferred bool
}

// lockEdge records "to acquired while from was held" with a witness
// position.
type lockEdge struct {
	from, to string
	pos      token.Position
	fn       string
}

func runLockorder(r *Repo) []Finding {
	la := newLockAnalysis(r)
	var out []Finding
	var edges []lockEdge
	for _, p := range r.Pkgs {
		inScope := pkgInDirs(p, lockorderDirs)
		p.funcs(func(f *File, fd *ast.FuncDecl) {
			fes, fs := la.analyzeFunc(p, f, fd, inScope)
			edges = append(edges, fes...)
			out = append(out, fs...)
		})
	}
	out = append(out, cycleFindings(edges)...)
	return out
}

// lockAnalysis carries the module-wide interprocedural state.
type lockAnalysis struct {
	r     *Repo
	decls map[*types.Func]*declSite
	// acquires memoizes the set of mutex identities a function may
	// acquire, transitively over static calls.
	acquires map[*types.Func]map[string]bool
	// blocks memoizes whether a function may transitively block on a
	// channel, select, WaitGroup.Wait, or time.Sleep.
	blocks map[*types.Func]bool
	// visiting guards both memoizations against recursion.
	visiting map[*types.Func]bool
}

func newLockAnalysis(r *Repo) *lockAnalysis {
	return &lockAnalysis{
		r:        r,
		decls:    r.declIndex(),
		acquires: map[*types.Func]map[string]bool{},
		blocks:   map[*types.Func]bool{},
		visiting: map[*types.Func]bool{},
	}
}

// analyzeFunc analyzes fd's body and every func literal inside it as
// independent regions (a literal usually runs on another goroutine, so
// its lock usage is its own story). Edges are collected module-wide;
// findings only for in-scope packages.
func (la *lockAnalysis) analyzeFunc(p *Package, f *File, fd *ast.FuncDecl, inScope bool) ([]lockEdge, []Finding) {
	marked := fd.Doc != nil && strings.Contains(fd.Doc.Text(), "lockorder:")
	fnName := funcDisplayName(p, fd)

	var edges []lockEdge
	var out []Finding
	for _, region := range regionsOf(fd.Body) {
		es, fs := la.analyzeRegion(p, f, fd, region, inScope, marked, fnName)
		edges = append(edges, es...)
		out = append(out, fs...)
	}
	return edges, out
}

// regionsOf returns fd.Body plus the body of every func literal inside
// it, however deeply nested; each is analyzed as its own lock region.
func regionsOf(body *ast.BlockStmt) []*ast.BlockStmt {
	regions := []*ast.BlockStmt{body}
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			regions = append(regions, fl.Body)
		}
		return true
	})
	return regions
}

// inspectRegion walks region without descending into nested func
// literals (they are separate regions).
func inspectRegion(region *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(region, func(n ast.Node) bool {
		if n == nil {
			return true // post-order exit callback
		}
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != region {
			return false
		}
		return fn(n)
	})
}

func (la *lockAnalysis) analyzeRegion(p *Package, f *File, fd *ast.FuncDecl, region *ast.BlockStmt, inScope, marked bool, fnName string) ([]lockEdge, []Finding) {
	ops := la.collectMutexOps(p.Info, region)
	if len(ops) == 0 {
		return nil, nil
	}
	spans := heldSpans(ops, region.End())
	if len(spans) == 0 {
		return nil, nil
	}

	var edges []lockEdge
	var out []Finding
	seenEdge := map[string]bool{}
	var nestedAt token.Pos
	addEdge := func(from, to string, at token.Pos) {
		if from == to {
			return
		}
		key := from + "\x00" + to
		if seenEdge[key] {
			return
		}
		seenEdge[key] = true
		edges = append(edges, lockEdge{from: from, to: to, pos: la.r.Fset.Position(at), fn: fnName})
		if !nestedAt.IsValid() {
			nestedAt = at
		}
	}
	report := func(pos token.Pos, held, what string) {
		if !inScope || marked || la.r.markerNear(f, pos, "lockorder:") {
			return
		}
		out = append(out, Finding{
			Pos:   la.r.Fset.Position(pos),
			Check: "lockorder",
			Msg: what + " while holding " + held + " is a potential deadlock; " +
				"release the lock first or document the safety argument with a `// lockorder:` marker",
		})
	}

	// Direct nested acquisitions within this region.
	for _, op := range ops {
		if op.kind != "Lock" && op.kind != "RLock" {
			continue
		}
		for _, hs := range spans {
			if hs.span.contains(op.pos) && hs.id != op.id && op.pos != hs.lockPos {
				addEdge(hs.id, op.id, op.pos)
			}
		}
	}

	// Calls and blocking operations inside held regions.
	deferred := deferredCalls(region)
	inspectRegion(region, func(n ast.Node) bool {
		held := heldAt(spans, n)
		if held == "" {
			return true
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			report(x.Pos(), held, "channel send")
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				report(x.Pos(), held, "channel receive")
			}
		case *ast.SelectStmt:
			report(x.Pos(), held, "select")
		case *ast.RangeStmt:
			if t := typeOf(p.Info, x.X); t != nil {
				if _, ok := deref(t).Underlying().(*types.Chan); ok {
					report(x.Pos(), held, "range over channel")
				}
			}
		case *ast.CallExpr:
			if deferred[x] {
				// A deferred call runs after the lexical region; it is not
				// executed under the lock at this site.
				return true
			}
			if isMutexMethod(p.Info, x) != "" {
				return true // the ops pass handled lock nesting
			}
			callee := calleeOf(p.Info, x)
			switch {
			case stdFunc(callee, "sync", "Wait") && isWaitGroupRecv(p.Info, x):
				report(x.Pos(), held, "sync.WaitGroup.Wait")
			case stdFunc(callee, "time", "Sleep"):
				report(x.Pos(), held, "time.Sleep")
			case callee != nil && la.decls[callee] != nil:
				// Static module call: propagate its acquisitions as edges,
				// and its blocking behaviour as a finding.
				for id := range la.funcAcquires(callee) {
					addEdge(held, id, x.Pos())
				}
				if la.funcBlocks(callee) {
					report(x.Pos(), held, "call to "+callee.Name()+" (transitively blocks on a channel)")
				}
			default:
				if ic := interfaceCallee(p.Info, x); ic != nil && takesContext(ic) {
					report(x.Pos(), held, "interface exec call "+ic.Name()+" (takes a context; may block on I/O)")
				}
			}
		}
		return true
	})

	if inScope && nestedAt.IsValid() && !marked {
		out = append(out, Finding{
			Pos:   la.r.Fset.Position(nestedAt),
			Check: "lockorder",
			Msg: "function " + fd.Name.Name + " acquires a lock while holding another without a " +
				"`// lockorder:` marker documenting the acquisition order it relies on",
		})
	}
	return edges, out
}

// funcAcquires memoizes the mutex identities fn may acquire,
// transitively over static calls. Func literal bodies are skipped: a
// literal stored and invoked later (or spawned) does not acquire at
// this function's call sites.
func (la *lockAnalysis) funcAcquires(fn *types.Func) map[string]bool {
	if got, ok := la.acquires[fn]; ok {
		return got
	}
	if la.visiting[fn] {
		return nil
	}
	site := la.decls[fn]
	if site == nil {
		return nil
	}
	la.visiting[fn] = true
	defer delete(la.visiting, fn)
	out := map[string]bool{}
	info := site.pkg.Info
	inspectRegion(site.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch isMutexMethod(info, call) {
		case "Lock", "RLock":
			if id := mutexIdentOfCall(info, call); id != "" {
				out[id] = true
			}
			return true
		}
		if callee := calleeOf(info, call); callee != nil && la.decls[callee] != nil {
			for id := range la.funcAcquires(callee) {
				out[id] = true
			}
		}
		return true
	})
	la.acquires[fn] = out
	return out
}

// funcBlocks memoizes whether fn may transitively block on a channel
// operation, select, WaitGroup.Wait, or time.Sleep.
func (la *lockAnalysis) funcBlocks(fn *types.Func) bool {
	if got, ok := la.blocks[fn]; ok {
		return got
	}
	if la.visiting[fn] {
		return false
	}
	site := la.decls[fn]
	if site == nil {
		return false
	}
	la.visiting[fn] = true
	defer delete(la.visiting, fn)
	info := site.pkg.Info
	blocks := false
	inspectRegion(site.decl.Body, func(n ast.Node) bool {
		if blocks {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			blocks = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				blocks = true
			}
		case *ast.CallExpr:
			callee := calleeOf(info, x)
			if (stdFunc(callee, "sync", "Wait") && isWaitGroupRecv(info, x)) || stdFunc(callee, "time", "Sleep") {
				blocks = true
			} else if callee != nil && la.decls[callee] != nil && la.funcBlocks(callee) {
				blocks = true
			}
		}
		return !blocks
	})
	la.blocks[fn] = blocks
	return blocks
}

// heldSpan is one lexical region during which a mutex identity is held.
type heldSpan struct {
	id      string
	lockPos token.Pos
	span    span
}

// heldSpans pairs each Lock/RLock with its lexical release: the first
// matching non-deferred unlock on the same identity after it, or the
// region end when the unlock is deferred (or missing — conservative).
func heldSpans(ops []mutexOp, regionEnd token.Pos) []heldSpan {
	sorted := append([]mutexOp(nil), ops...)
	sort.Slice(sorted, func(i, j int) bool { return posLess(sorted[i].pos, sorted[j].pos) })
	var out []heldSpan
	for _, op := range sorted {
		var match string
		switch op.kind {
		case "Lock":
			match = "Unlock"
		case "RLock":
			match = "RUnlock"
		default:
			continue
		}
		hi := regionEnd
		for _, u := range sorted {
			if u.kind == match && u.id == op.id && !u.deferred && posLess(op.pos, u.pos) {
				hi = u.pos
				break
			}
		}
		out = append(out, heldSpan{id: op.id, lockPos: op.pos, span: span{op.pos + 1, hi}})
	}
	return out
}

// heldAt returns a mutex identity held at n's position, or "".
func heldAt(spans []heldSpan, n ast.Node) string {
	for _, hs := range spans {
		if hs.span.contains(n.Pos()) {
			return hs.id
		}
	}
	return ""
}

// collectMutexOps finds every sync.Mutex/RWMutex Lock/Unlock-family
// call in the region (not descending into nested func literals), with
// its resolved identity and defer status.
func (la *lockAnalysis) collectMutexOps(info *types.Info, region *ast.BlockStmt) []mutexOp {
	deferred := deferredCalls(region)
	var ops []mutexOp
	inspectRegion(region, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind := isMutexMethod(info, call)
		if kind == "" {
			return true
		}
		id := mutexIdentOfCall(info, call)
		if id == "" {
			return true
		}
		ops = append(ops, mutexOp{pos: call.Pos(), id: id, kind: kind, deferred: deferred[call]})
		return true
	})
	return ops
}

// isMutexMethod reports the sync mutex method name the call resolves to
// ("Lock", "RLock", "Unlock", "RUnlock"), or "".
func isMutexMethod(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return ""
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return ""
	}
	return name
}

// isWaitGroupRecv reports whether the call's receiver is a
// sync.WaitGroup (distinguishing Wait from other sync types' Wait).
func isWaitGroupRecv(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return namedPkgType(typeOf(info, sel.X), "sync", "WaitGroup")
}

// mutexIdentOfCall renders the stable identity of the mutex a
// Lock-family call operates on: "pkg.Type.field" for struct fields,
// "pkg.name" for package-level variables, "name@offset" for locals.
func mutexIdentOfCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return mutexIdent(info, sel.X)
}

func mutexIdent(info *types.Info, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			return ""
		}
		if v, ok := obj.(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return shortPkg(v.Pkg()) + "." + v.Name()
			}
			// A local or parameter mutex: identify by declaration site so
			// two locals in different functions stay distinct.
			return fmt.Sprintf("%s@%d", v.Name(), v.Pos())
		}
		return ""
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			recv := deref(sel.Recv())
			if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
				return shortPkg(named.Obj().Pkg()) + "." + named.Obj().Name() + "." + sel.Obj().Name()
			}
			return sel.Obj().Name()
		}
		return ""
	case *ast.IndexExpr:
		// A mutex in a slice/map element: identify by the container.
		return mutexIdent(info, x.X)
	}
	return ""
}

// shortPkg renders a package for identity strings: the last two path
// segments ("internal/shard") so messages stay readable.
func shortPkg(p *types.Package) string {
	return shortPkgPath(p.Path())
}

func shortPkgPath(ipath string) string {
	parts := strings.Split(ipath, "/")
	if len(parts) > 2 {
		parts = parts[len(parts)-2:]
	}
	return strings.Join(parts, "/")
}

// takesContext reports whether the function's signature has a
// context.Context parameter.
func takesContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if namedPkgType(sig.Params().At(i).Type(), "context", "Context") {
			return true
		}
	}
	return false
}

// funcDisplayName renders pkg-qualified function names for edges.
func funcDisplayName(p *Package, fd *ast.FuncDecl) string {
	return shortPkgPath(p.PkgPath) + "." + fd.Name.Name
}

// cycleFindings reports every edge that participates in a cycle of the
// acquisition graph. Markers never suppress these: a cycle is a
// deadlock waiting for its interleaving.
func cycleFindings(edges []lockEdge) []Finding {
	adj := map[string][]lockEdge{}
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e)
	}
	reaches := func(from, to string) bool {
		seen := map[string]bool{}
		stack := []string{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == to {
				return true
			}
			if seen[n] {
				continue
			}
			seen[n] = true
			for _, e := range adj[n] {
				stack = append(stack, e.to)
			}
		}
		return false
	}
	var out []Finding
	for _, e := range edges {
		if reaches(e.to, e.from) {
			out = append(out, Finding{
				Pos:   e.pos,
				Check: "lockorder",
				Msg: fmt.Sprintf("lock ordering cycle: %s acquired while %s is held (in %s), "+
					"but elsewhere %s is acquired while %s is held — deadlock under the right interleaving",
					e.to, e.from, e.fn, e.from, e.to),
			})
		}
	}
	return out
}
