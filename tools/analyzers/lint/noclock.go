package lint

import (
	"go/ast"
	"strings"
)

// Noclock bans direct clock access from the packages that injected
// their clocks on purpose:
//
//   - internal/plan never calls time.Now. Per-operator timing belongs
//     to the stats sink (internal/eval), which is sampled once per
//     batch — a clock read inside a row loop would put a vDSO call (and
//     on some platforms a real syscall) on the per-row path. Deadlines
//     come in through the context and the governor's wall-time budget,
//     so plan code has no legitimate need for the clock.
//
//   - internal/shard never calls time.Now, time.Sleep, time.Since, or
//     time.Until. The fault-tolerance layer grew the Policy.WithClock
//     seam exactly so the chaos battery can drive breaker cooldowns and
//     retry backoffs deterministically; a direct clock read bypasses
//     the injected clock and makes a chaos schedule unreproducible. The
//     one sanctioned wiring point — Policy.filled defaulting the
//     injected funcs to the real clock — carries a `// noclock:` marker
//     naming itself as the allowlisted injection site.
var Noclock = &Analyzer{
	Name: "noclock",
	Doc:  "internal/plan never reads the clock; internal/shard goes through the Policy.WithClock injection seam",
	Run:  perFile(noclock),
}

// noclockShardBans are the time package functions that read or spend
// real time; timer construction (time.NewTimer) is legal because the
// hedging timer is cancelled through the context machinery the chaos
// tests already control.
var noclockShardBans = []string{"Now", "Sleep", "Since", "Until"}

func noclock(r *Repo, f *File) []Finding {
	inPlan := strings.HasPrefix(f.Path, "internal/plan/")
	inShard := strings.HasPrefix(f.Path, "internal/shard/")
	if !inPlan && !inShard {
		return nil
	}
	banned := noclockShardBans
	if inPlan {
		banned = []string{"Now"}
	}
	var out []Finding
	ast.Inspect(f.Ast, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		name := ""
		for _, b := range banned {
			if isPkgSel(e, "time", b) {
				name = b
				break
			}
		}
		if name == "" {
			return true
		}
		if inShard && r.markerNear(f, e.Pos(), "noclock:") {
			// The allowlisted injection point: Policy.filled wiring the
			// default clock into the WithClock seam.
			return true
		}
		msg := "time.Now in internal/plan; clock reads belong to the stats sink (internal/eval), not plan operators"
		if inShard {
			msg = "time." + name + " in internal/shard bypasses the Policy.WithClock injection seam; " +
				"use the policy's now()/sleep() (or mark the injection point itself with `// noclock:`)"
		}
		out = append(out, Finding{Pos: r.pos(e), Check: "noclock", Msg: msg})
		return true
	})
	return out
}
