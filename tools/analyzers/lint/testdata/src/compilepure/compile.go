//lint:path internal/eval/compile.go

package cpfix

type expr func() int

func compileAdd(a, b expr) expr {
	return func() int { return a() + b() }
}

func compileBad(a expr) expr {
	return func() int {
		f := func() int { return a() } // want "nested inside a compiled closure"
		return f()
	}
}
