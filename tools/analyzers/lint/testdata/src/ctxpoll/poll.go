//lint:path internal/plan/poll.go

package pollfix

import (
	"sqlpp/internal/eval"
	"sqlpp/internal/value"
)

func burn(ctx *eval.Context, vals []value.Value) int {
	n := 0
	for _, v := range vals { // want "never reaches a cancellation/governor poll"
		if v != nil {
			n++
		}
	}
	return n
}

func burnIndexed(ctx *eval.Context, vals []value.Value) int {
	n := 0
	for i := 0; i < len(vals); i++ { // want "never reaches a cancellation/governor poll"
		if vals[i] != nil {
			n++
		}
	}
	return n
}

func polite(ctx *eval.Context, vals []value.Value) (int, error) {
	n := 0
	for _, v := range vals {
		if err := ctx.Interrupted(); err != nil {
			return 0, err
		}
		if v != nil {
			n++
		}
	}
	return n, nil
}

func helper(ctx *eval.Context) error { return ctx.Interrupted() }

func politeTransitively(ctx *eval.Context, vals []value.Value) (int, error) {
	n := 0
	for range vals {
		if err := helper(ctx); err != nil {
			return 0, err
		}
		n++
	}
	return n, nil
}

// noPoller has no Context/Governor in reach — it cannot poll by
// construction, so the responsibility is its caller's.
func noPoller(vals []value.Value) int {
	n := 0
	for _, v := range vals {
		if v != nil {
			n++
		}
	}
	return n
}

func bounded(ctx *eval.Context, vals []value.Value) int {
	n := 0
	// ctxpoll: the caller charged the governor for vals before entry;
	// this fold adds no latency beyond the already-charged batch.
	for _, v := range vals {
		if v != nil {
			n++
		}
	}
	return n
}
