//lint:path internal/plan/seam.go

package seamfix

import (
	"errors"
	"fmt"
)

// Package-level sentinels are a classification scheme of their own:
// callers compare with errors.Is.
var errSentinel = errors.New("plan: sentinel")

func bare() error {
	return errors.New("plan: something happened") // want "bare errors.New"
}

func flattened(cause error) error {
	return fmt.Errorf("plan: merge failed: %v", cause) // want "has no %w"
}

func wrapped(cause error) error {
	return fmt.Errorf("plan: merge failed: %w", cause)
}

func opaqueOnPurpose() error {
	// errseam: developer-facing invariant message; never classified.
	return errors.New("plan: impossible state")
}

func textOnly(n int) error {
	return fmt.Errorf("plan: %d rows", n)
}

func useSentinel() error { return errSentinel }
