//lint:path internal/faultinject/enabled_plain.go

package fifix // want "without a //go:build constraint"

// Enabled redeclared in a tag-free file defeats the whole gating
// scheme; the check fires on the file, anchored at the package clause.
const Enabled = true

var _ = Enabled
