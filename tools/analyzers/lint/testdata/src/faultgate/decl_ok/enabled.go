//go:build !faultinject

//lint:path internal/faultinject/enabled_ok.go

package fifix

const Enabled = false

var _ = Enabled
