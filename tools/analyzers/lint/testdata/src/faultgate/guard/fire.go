//lint:path internal/plan/fire.go

package fgfix

import "sqlpp/internal/faultinject"

func guarded() error {
	if faultinject.Enabled {
		if err := faultinject.Fire(faultinject.ShardExec); err != nil {
			return err
		}
	}
	return nil
}

func unguarded() error {
	return faultinject.Fire(faultinject.ShardExec) // want "not guarded"
}
