//lint:path internal/server/leak.go

package leakfix

import "sync"

func leak() {
	go func() {}() // want "no provable join"
}

func joinedWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
}

func joinedChannel() int {
	ch := make(chan int, 1)
	go func() { ch <- 1 }()
	return <-ch
}

func documented() {
	// goroutine: daemon — lives for the process, reaped at exit.
	go func() {
		select {}
	}()
}

func opaque(fn func()) {
	go fn() // want "cannot see"
}

func launchVariable() int {
	ch := make(chan int, 1)
	launch := func() { ch <- 2 }
	go launch()
	return <-ch
}

func worker(ch chan int) { ch <- 3 }

func namedSpawn() int {
	ch := make(chan int, 1)
	go worker(ch)
	return <-ch
}

func wgWorker(wg *sync.WaitGroup) { wg.Done() }

func handedWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go wgWorker(&wg)
	wg.Wait()
}
