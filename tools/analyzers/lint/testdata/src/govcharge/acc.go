//lint:path internal/plan/acc.go

package accfix

type gov struct{}

func (gov) ChargeValues(n int) error { return nil }

func accumulate(in []int) []int {
	var out []int
	for _, v := range in {
		out = append(out, v) // want "accumulates rows in a loop"
	}
	return out
}

func accumulateCharged(g gov, in []int) ([]int, error) {
	var out []int
	for _, v := range in {
		if err := g.ChargeValues(1); err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// governor:bounded by the clause count of the query, not the data.
func accumulateBounded(in []int) []int {
	var out []int
	for _, v := range in {
		out = append(out, v)
	}
	return out
}

func noLoop(in []int) []int {
	return append([]int(nil), in...)
}
