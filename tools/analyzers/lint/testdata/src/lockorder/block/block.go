//lint:path internal/shard/block.go

package blockfix

import "sync"

type S struct {
	mu sync.Mutex
	ch chan int
}

func (s *S) sendUnderLock() {
	s.mu.Lock()
	s.ch <- 1 // want "channel send while holding"
	s.mu.Unlock()
}

func (s *S) sendUnderDeferredUnlock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 2 // want "channel send while holding"
}

func (s *S) sendAfterUnlock() {
	s.mu.Lock()
	v := 3
	s.mu.Unlock()
	s.ch <- v
}

func waiter(s *S) int { return <-s.ch }

func (s *S) indirect() int {
	s.mu.Lock()
	v := waiter(s) // want "transitively blocks"
	s.mu.Unlock()
	return v
}

// lockorder: the channel is buffered with headroom for every possible
// sender, so the send under the lock cannot block.
func (s *S) documented() {
	s.mu.Lock()
	s.ch <- 4
	s.mu.Unlock()
}
