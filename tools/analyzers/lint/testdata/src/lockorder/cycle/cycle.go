//lint:path internal/shard/cycle.go

package cyclefix

import "sync"

type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

// lockorder: C.mu before D.mu on the read path.
func readPath(c *C, d *D) {
	c.mu.Lock()
	d.mu.Lock() // want "lock ordering cycle"
	d.mu.Unlock()
	c.mu.Unlock()
}

// lockorder: D.mu before C.mu on the write path — contradicts readPath;
// the cycle finding fires regardless of the markers.
func writePath(c *C, d *D) {
	d.mu.Lock()
	c.mu.Lock() // want "lock ordering cycle"
	c.mu.Unlock()
	d.mu.Unlock()
}
