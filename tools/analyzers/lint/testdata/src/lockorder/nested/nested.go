//lint:path internal/shard/nested.go

package nestedfix

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func bothUnmarked(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want "acquires a lock while holding another"
	b.mu.Unlock()
	a.mu.Unlock()
}

// lockorder: A.mu before B.mu, always; the reverse order never occurs.
func bothMarked(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

func sequential(a *A, b *B) {
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}
