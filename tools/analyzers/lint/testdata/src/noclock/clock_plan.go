//lint:path internal/plan/clock.go

package ncfix

import "time"

func planNow() int64 {
	return time.Now().UnixNano() // want "time.Now in internal/plan"
}

func planSleepIsFine(d time.Duration) {
	// Only time.Now is banned in plan; sleeps live behind the shard
	// policy seam, which plan never touches.
	time.Sleep(d)
}
