//lint:path internal/shard/clock.go

package ncfix

import "time"

func shardSleep() {
	time.Sleep(time.Millisecond) // want "bypasses the Policy.WithClock"
}

func shardElapsed(start time.Time) time.Duration {
	return time.Since(start) // want "bypasses the Policy.WithClock"
}

func shardInjectionPoint() func() time.Time {
	// noclock: the fixture's injection seam — mirrors Policy.filled.
	return time.Now
}
