package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The typed passes share a small vocabulary for talking about the
// module's types without hard-coding the module name: a package is
// recognized by the suffix of its import path ("internal/eval"), so the
// fixture corpus — whose packages type-check against the real module —
// exercises the same resolution the repo run uses.

// declSite is one function declaration with its location.
type declSite struct {
	pkg  *Package
	file *File
	decl *ast.FuncDecl
}

// declIndex maps every function object defined in the loaded packages
// to its declaration, for the interprocedural passes (built once per
// Repo).
func (r *Repo) declIndex() map[*types.Func]*declSite {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.decls != nil {
		return r.decls
	}
	idx := map[*types.Func]*declSite{}
	for _, p := range r.Pkgs {
		for _, f := range p.Files {
			for _, d := range f.Ast.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					idx[obj] = &declSite{pkg: p, file: f, decl: fd}
				}
			}
		}
	}
	r.decls = idx
	return idx
}

// deref unwraps pointers.
func deref(t types.Type) types.Type {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

// namedPkgType reports whether t (possibly behind pointers) is the
// named type name declared in a package whose import path ends in
// pkgSuffix.
func namedPkgType(t types.Type, pkgSuffix, name string) bool {
	if t == nil {
		return false
	}
	n, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return pathHasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// pathHasSuffix reports whether ipath is pkgSuffix or ends in
// "/"+pkgSuffix.
func pathHasSuffix(ipath, pkgSuffix string) bool {
	return ipath == pkgSuffix || strings.HasSuffix(ipath, "/"+pkgSuffix)
}

// calleeOf resolves a call's static callee: a declared function or a
// concrete method. Calls through function values, interface methods,
// builtins, and type conversions resolve to nil.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		sel, ok := info.Selections[fun]
		if ok {
			// Interface dispatch has no static body; report nil so the
			// interprocedural passes treat it as unresolvable.
			if types.IsInterface(deref(sel.Recv())) {
				return nil
			}
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call (fmt.Errorf).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// interfaceCallee resolves a call dispatched through an interface value
// to the interface method object, or nil.
func interfaceCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok || !types.IsInterface(deref(s.Recv())) {
		return nil
	}
	f, _ := s.Obj().(*types.Func)
	return f
}

// stdFunc reports whether fn is the function or method name declared in
// the standard-library package pkg (exact import path).
func stdFunc(fn *types.Func, pkg, name string) bool {
	return fn != nil && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == pkg
}

// isDynamicCall reports whether call invokes something without a static
// body we can see: a function value, an interface method, or a method
// value. Builtins and type conversions are not calls into unknown code
// and report false.
func isDynamicCall(info *types.Info, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		return false
	}
	switch f := fun.(type) {
	case *ast.FuncLit:
		return false // body is right there; callers inspect it lexically
	case *ast.Ident:
		switch info.Uses[f].(type) {
		case *types.Func:
			return false
		case *types.Var:
			return true // call through a function-typed variable
		}
		return false
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			if types.IsInterface(deref(sel.Recv())) {
				return true
			}
			_, isVar := sel.Obj().(*types.Var)
			return isVar // function-typed field
		}
		return false
	}
	return true
}

// rootObj resolves the identity behind an expression used as a channel
// or sync primitive: the variable for identifiers, the field object for
// selections, nil when no stable identity exists.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := info.Uses[x]; o != nil {
			return o
		}
		return info.Defs[x]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			return sel.Obj()
		}
		return info.Uses[x.Sel]
	case *ast.IndexExpr:
		return rootObj(info, x.X)
	}
	return nil
}

// typeOf is info.Types[e].Type with nil safety.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// errorIface is the universe error interface.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface)
}

// deferredCalls collects the call expressions that are the immediate
// target of a defer statement in body.
func deferredCalls(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	out := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			out[d.Call] = true
		}
		return true
	})
	return out
}

// posLess orders token positions within one file set.
func posLess(a, b token.Pos) bool { return a < b }
