// Command analyzers runs the repo's static-analysis suite (see
// tools/analyzers/lint) over a module tree and reports every invariant
// violation.
//
// Usage:
//
//	go run ./tools/analyzers [-root dir] [-check name,...] [-json file] [-baseline file] [-list]
//
// Exit codes follow the suite's convention (mirrored by `sqlpp -vet`):
// 0 when the tree is clean, 1 when findings are reported, 2 when the
// analysis itself failed (parse error, type-check error, bad flags) —
// so CI can tell "the code is wrong" from "the analyzer is broken".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"sqlpp/tools/analyzers/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	root := flag.String("root", ".", "module root to analyze")
	checks := flag.String("check", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.String("json", "", "also write findings as a JSON array to this file ('-' for stdout)")
	baseline := flag.String("baseline", "", "baseline file of grandfathered finding keys to suppress")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	selected := lint.All
	if *checks != "" {
		selected = nil
		byName := map[string]*lint.Analyzer{}
		for _, a := range lint.All {
			byName[a.Name] = a
		}
		for _, name := range strings.Split(*checks, ",") {
			a := byName[strings.TrimSpace(name)]
			if a == nil {
				fmt.Fprintf(os.Stderr, "analyzers: unknown check %q (use -list)\n", name)
				return 2
			}
			selected = append(selected, a)
		}
	}

	repo, err := lint.Load(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "analyzers: %v\n", err)
		return 2
	}
	findings := lint.Run(repo, selected)
	if *baseline != "" {
		base, err := lint.ReadBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "analyzers: %v\n", err)
			return 2
		}
		findings = lint.FilterBaseline(findings, base)
	}

	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, findings); err != nil {
			fmt.Fprintf(os.Stderr, "analyzers: %v\n", err)
			return 2
		}
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "analyzers: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// jsonFinding is the stable JSON shape CI artifacts carry.
type jsonFinding struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
	Check  string `json:"check"`
	Msg    string `json:"msg"`
}

func writeJSON(path string, findings []lint.Finding) error {
	out := make([]jsonFinding, len(findings))
	for i, f := range findings {
		out[i] = jsonFinding{
			File: f.Pos.Filename, Line: f.Pos.Line, Column: f.Pos.Column,
			Check: f.Check, Msg: f.Msg,
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
