// Command analyzers is the repo's invariant linter: a stdlib-only
// static analysis driver (go/parser + go/ast, no external analysis
// framework) that enforces engine-wide structural invariants the type
// system cannot express. It is run in CI's vet job as
//
//	go run ./tools/analyzers
//
// and exits non-zero when any invariant is violated. The checks:
//
//   - faultgate: every faultinject.Fire call site is lexically guarded
//     by `if faultinject.Enabled`, so normal builds (where Enabled is a
//     constant false) compile the injection points away; and the
//     Enabled constant itself is only ever declared under a //go:build
//     constraint.
//
//   - govcharge: every function in internal/plan that materializes rows
//     (appends inside a loop) either charges the resource governor or
//     carries a `// governor:` marker comment naming the charge site or
//     the bound that makes charging unnecessary. This keeps "operator
//     buffers are governed" true as the engine grows.
//
//   - noclock: internal/plan never calls time.Now. Per-operator timing
//     belongs to the stats sink (internal/eval), which is sampled once
//     per batch — a clock read inside a row loop would put a syscall on
//     the per-row path.
//
//   - compilepure: internal/eval/compile.go never nests a func literal
//     inside another func literal. Compiled closures are allocated once
//     at prepare time; a nested literal would be re-allocated on every
//     evaluation, putting per-row allocation back on the path closure
//     compilation exists to clear.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// finding is one invariant violation.
type finding struct {
	pos   token.Position
	check string
	msg   string
}

// srcFile is one parsed source file handed to the checks.
type srcFile struct {
	path string // slash-separated, relative to the repo root
	fset *token.FileSet
	ast  *ast.File
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	files, err := parseTree(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "analyzers: %v\n", err)
		os.Exit(2)
	}

	var findings []finding
	for _, f := range files {
		findings = append(findings, faultgate(f)...)
		findings = append(findings, govcharge(f)...)
		findings = append(findings, noclock(f)...)
		findings = append(findings, compilepure(f)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		return a.check < b.check
	})
	for _, f := range findings {
		fmt.Printf("%s: [%s] %s\n", f.pos, f.check, f.msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "analyzers: %d invariant violation(s)\n", len(findings))
		os.Exit(1)
	}
}

// parseTree parses every non-test Go file under root, skipping vendored
// and non-source trees. Test files are exempt from the invariants: they
// may use clocks freely and arm injection points directly.
func parseTree(root string) ([]*srcFile, error) {
	var files []*srcFile
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == ".git" || name == "testdata" || name == "examples" || name == ".github" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		fset := token.NewFileSet()
		tree, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		files = append(files, &srcFile{path: filepath.ToSlash(rel), fset: fset, ast: tree})
		return nil
	})
	return files, err
}

// span is a half-open byte-position interval within a file.
type span struct{ lo, hi token.Pos }

func (s span) contains(p token.Pos) bool { return s.lo <= p && p < s.hi }

func inAny(spans []span, p token.Pos) bool {
	for _, s := range spans {
		if s.contains(p) {
			return true
		}
	}
	return false
}

// isPkgSel reports whether e is the selector pkg.name on a plain
// package identifier.
func isPkgSel(e ast.Expr, pkg, name string) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == pkg
}

// mentions reports whether the selector pkg.name occurs anywhere in n.
func mentions(n ast.Node, pkg, name string) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if e, ok := c.(ast.Expr); ok && isPkgSel(e, pkg, name) {
			found = true
			return false
		}
		return !found
	})
	return found
}
