package main

import (
	"go/ast"
	"strings"
)

// noclock bans time.Now from internal/plan entirely. Operator timing is
// the stats sink's job (internal/eval), which samples the clock once
// per batch boundary; a time.Now inside a plan operator would sooner or
// later end up inside a row loop, putting a vDSO call (and on some
// platforms a real syscall) on the per-row path. Deadlines come in
// through the context and the governor's wall-time budget, so plan code
// has no legitimate need for the clock.
func noclock(f *srcFile) []finding {
	if !strings.HasPrefix(f.path, "internal/plan/") {
		return nil
	}
	var out []finding
	ast.Inspect(f.ast, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok || !isPkgSel(e, "time", "Now") {
			return true
		}
		out = append(out, finding{
			pos:   f.fset.Position(e.Pos()),
			check: "noclock",
			msg:   "time.Now in internal/plan; clock reads belong to the stats sink (internal/eval), not plan operators",
		})
		return true
	})
	return out
}
